// Multi-core serving cluster: N independent extended RI5CY cores sharing
// read-only weight memory.
//
// Per network the cluster builds one program image with a parameter/buffer
// split (kernels::kParamBase): text and parameters are captured into
// shared backings, mapped read-only into every core's private memory
// (iss::Memory::map_segment). The memory map itself enforces the sharing
// contract — a store into the weight segment from any core raises
// kMemWriteProtected. Buffers (activations, recurrent state, I/O) stay in
// each core's private flat storage, so cores run the same network
// concurrently without interfering.
//
// Program flavors per network:
//   - single: the classic one-sample BuiltNetwork program, built at the
//     cluster's primary level and — when cfg.fallback_level is set — at a
//     second, cheaper level the scheduler can degrade to under overload
//     (heterogeneous per-core levels: every core can run either flavor);
//   - batched (FC-only nets, batch >= 2): build_fc_batch_network coalesces
//     B samples into one execution, restoring the 2-D tiling of Sec. II-A.
//     Batched programs exist at the primary level only.
// All flavors compute bit-exact per-sample results (same accumulation
// order), so the scheduler can mix them freely.
//
// Fault-tolerant execution: run_single/run_batched optionally run under a
// fault::FaultSpec. A trapped or watchdog-killed execution surfaces as a
// structured ExecResult::failure (never an abort), the injected
// FaultEvents are returned for (core, request) attribution, and the cycle
// watchdog derives from the program's static cycle lower bound
// (analysis::campaign_watchdog) unless overridden. Campaign flips are
// confined to per-core transient state (private TCDM buffers, register
// file, SPRs, PLA LUTs — scrubbed after each faulted execution); the
// shared read-only text/weight segments are never targeted, so one core's
// campaign cannot corrupt another's results.
//
// Simulated time: each execution reports its own cycle count (the core's
// RunResult), which the scheduler turns into per-core clocks. "The
// hardware" is N single-issue cores — no host threads; everything is
// deterministic.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/exec/backend.h"
#include "src/fault/fault_injector.h"
#include "src/iss/core.h"
#include "src/kernels/fc_batch.h"
#include "src/obs/profile.h"
#include "src/rrm/networks.h"
#include "src/translate/tcore.h"

namespace rnnasip::serve {

struct ClusterConfig {
  int cores = 4;
  kernels::OptLevel level = kernels::OptLevel::kInputTiling;
  /// Second single-program build at a cheaper level for graceful
  /// degradation under overload; unset = no fallback flavor.
  std::optional<kernels::OptLevel> fallback_level;
  /// Batch capacity B of the batched program (1 = no batched flavor).
  int batch = 1;
  int max_tile = 8;
  uint64_t seed = 0x52414D;  ///< network parameter seed (as rrm::Engine)
  iss::Core::Config core_config;
  /// Per-execution cycle watchdog applied to *faulted* executions.
  /// 0 = automatic: twice the flavor's calibrated execution cost (exact —
  /// cycle counts are input-independent), floored by the engine's static
  /// bound x margin rule (analysis::campaign_watchdog). Fault-free
  /// executions run unbounded, exactly as before.
  uint64_t watchdog_cycles = 0;
  /// Attach a RegionProfiler to every execution and aggregate per-region
  /// cycles across the whole serving run (region_cycles()).
  bool observe = false;
  /// Execution backend for fault-free, unobserved executions. kIss (the
  /// default) is the cycle-accurate interpreter, bit-identical to before
  /// this field existed. kTranslated dispatches verified programs through
  /// src/translate at host speed with bit-identical outputs and cycles.
  /// Faulted executions and observed clusters always run on the lane's ISS
  /// (injection and profiling hook the interpreter); ExecResult::backend
  /// records which backend actually ran, so the fallback is never silent
  /// (see docs/BACKENDS.md).
  ExecBackend backend = ExecBackend::kIss;
  /// Build every *single* flavor with ABFT integrity instrumentation
  /// (per-layer checksum + ecall yield; BuiltNetwork::checks). Batched
  /// programs stay plain. run_single/run_bound transparently resume over
  /// the yields, so an integrity cluster serves identical outputs; the
  /// scheduler's integrity path (CheckedRun) uses the yields for
  /// detection, rollback, and layer-boundary preemption.
  bool integrity = false;
};

/// Why one execution failed (trap or watchdog); the request is re-
/// dispatchable — the core and its private memory are reusable as-is.
struct ExecFailure {
  iss::RunResult::Exit exit = iss::RunResult::Exit::kTrap;
  iss::Trap trap;  ///< structured cause/pc/addr record
};

/// One program execution on one core.
struct ExecResult {
  uint64_t cycles = 0;  ///< cycles this execution took on its core
  /// Per-sample outputs: one vector for a single run, `filled` vectors for
  /// a batched run (padding slots are dropped). Empty when failed.
  std::vector<std::vector<int16_t>> outputs;
  /// Set when the execution trapped or hit the watchdog instead of
  /// retiring ebreak. `cycles` still counts what the core consumed.
  std::optional<ExecFailure> failure;
  /// SEU campaign events injected during this execution (empty without a
  /// FaultSpec) — the per-(core, request) attribution surface.
  std::vector<fault::FaultEvent> fault_events;
  /// Which backend actually executed: a kTranslated cluster still runs
  /// faulted/observed executions on the ISS, and this records it.
  ExecBackend backend = ExecBackend::kIss;

  bool ok() const { return !failure.has_value(); }
};

class Cluster {
 public:
  /// Builds shared images for `networks` (suite names) and cfg.cores cores.
  Cluster(ClusterConfig cfg, const std::vector<std::string>& networks);

  int cores() const { return cfg_.cores; }
  const ClusterConfig& config() const { return cfg_; }
  const std::vector<std::string>& networks() const { return names_; }

  const rrm::RrmNetwork& network(const std::string& name) const;
  /// FC-only networks coalesce when the cluster was built with batch >= 2.
  bool batchable(const std::string& name) const;

  /// Run one request (single forward pass, fresh recurrent state) on core
  /// `core` at the primary level. With `fault` (any rate > 0), the
  /// execution runs under a seeded SEU campaign bounded by the watchdog;
  /// a trap/kill lands in ExecResult::failure instead of aborting.
  ExecResult run_single(int core, const std::string& name,
                        std::span<const int16_t> input,
                        const fault::FaultSpec* fault = nullptr);
  /// Same, at an explicit level (the primary or cfg.fallback_level).
  ExecResult run_single_at(int core, kernels::OptLevel level, const std::string& name,
                           std::span<const int16_t> input,
                           const fault::FaultSpec* fault = nullptr);

  /// Run up to B coalesced same-network requests as one batched execution;
  /// missing slots are zero-padded (the fixed-B program always runs all B
  /// lanes, so cycles equal the full-batch cost).
  ExecResult run_batched(int core, const std::string& name,
                         std::span<const std::vector<int16_t>> inputs,
                         const fault::FaultSpec* fault = nullptr);

  /// Deterministic per-request cycle estimate for admission control: the
  /// measured cycles of one calibration run of the flavor on a scratch
  /// core (cycle counts are input-independent for the dense kernels, so
  /// the estimate is exact for single flavors). Cached per flavor.
  uint64_t estimated_single_cycles(const std::string& name, kernels::OptLevel level);
  uint64_t estimated_single_cycles(const std::string& name) {
    return estimated_single_cycles(name, cfg_.level);
  }

  /// Certified worst-case cycles of the flavor (the verifier's WCET, see
  /// analysis/wcet.h): every execution provably finishes within this, so
  /// admission against it never admits a request that then misses its
  /// deadline (Admission::kProvable). Falls back to the calibrated
  /// estimate when the program has no certified bound. Cached per flavor.
  uint64_t provable_single_cycles(const std::string& name,
                                  kernels::OptLevel level);

  /// The watchdog a faulted execution of this flavor runs under
  /// (cfg.watchdog_cycles, or the derived static-bound watchdog).
  uint64_t watchdog_cycles(const std::string& name, kernels::OptLevel level);

  /// Weight bytes resident once per network vs what N private copies would
  /// hold (the sharing win the read-only segment buys).
  uint64_t shared_param_bytes() const;

  /// The shared read-only parameter segment of one network (primary level)
  /// — test surface for the write-protection contract.
  uint32_t param_base(const std::string& name) const;
  uint32_t param_bytes(const std::string& name) const;
  iss::Core& core(int core) { return *lanes_[static_cast<size_t>(core)].core; }
  iss::Memory& memory(int core) { return *lanes_[static_cast<size_t>(core)].mem; }
  /// The execution backend lane `core` dispatches the currently bound
  /// program on. `need_iss` forces the interpreter (fault injection and
  /// observability hook it); otherwise the cluster's configured backend,
  /// with the translated image bound lazily per flavor. Call after bind().
  exec::ExecutionBackend& backend(int core, bool need_iss = false);
  /// The built single-program flavor (checks/addresses for CheckedRun).
  const kernels::BuiltNetwork& built_single(const std::string& name,
                                            kernels::OptLevel level) {
    return flavor(name, level).single;
  }
  /// Pristine PLA tables (the golden oracle's activation semantics).
  const activation::PlaTable& tanh_table() const { return tanh_pristine_; }
  const activation::PlaTable& sig_table() const { return sig_pristine_; }
  /// Restore core `core`'s PLA LUTs from the pristine tables (what
  /// run_bound does after every faulted execution; the scheduler's
  /// integrity path scrubs at suspension/failure boundaries itself).
  void scrub_pla(int core);
  /// Map `name`'s image into core `core` (what run_* do on demand).
  void bind(int core, const std::string& name, bool batched,
            std::optional<kernels::OptLevel> level = std::nullopt);

  /// With cfg.observe: region name -> cycles aggregated over every
  /// execution so far (insertion-ordered by first appearance).
  const std::vector<std::pair<std::string, uint64_t>>& region_cycles() const {
    return region_cycles_;
  }

  /// With cfg.observe: one aggregated region-*tree* observation per program
  /// flavor actually executed ("<net>@<level letter>", "<net>@batch"),
  /// counters merged across every execution, nesting preserved — the input
  /// the serving flamegraph folds (obs::to_collapsed_stacks). Unlike
  /// region_cycles(), same-named regions of different flavors stay apart.
  const std::vector<obs::NetObservation>& observations() const {
    return observations_;
  }

 private:
  /// One single-program build of a network at one level.
  struct Flavor {
    kernels::BuiltNetwork single;
    std::shared_ptr<std::vector<uint8_t>> text;
    std::shared_ptr<std::vector<uint8_t>> params;
    /// Lazy translated image (kTranslated clusters; shared across lanes).
    std::shared_ptr<const translate::TranslatedProgram> timage;
    uint64_t est_cycles = 0;      ///< lazy calibration-run estimate
    uint64_t wcet_cycles = 0;     ///< lazy certified WCET (0 = not derived)
    uint64_t watchdog_cycles = 0; ///< lazy derived campaign watchdog
  };
  struct Image {
    rrm::RrmNetwork net;
    std::map<kernels::OptLevel, Flavor> flavors;  ///< primary [+ fallback]
    std::optional<kernels::BatchedFcNet> batched;
    std::shared_ptr<std::vector<uint8_t>> batched_text;
    std::shared_ptr<std::vector<uint8_t>> batched_params;
    std::shared_ptr<const translate::TranslatedProgram> batched_timage;
    uint64_t batched_watchdog = 0;
  };
  struct Lane {
    std::unique_ptr<iss::Memory> mem;
    std::unique_ptr<iss::Core> core;
    /// Backend adapter over `core` (what backend() returns for ISS runs).
    exec::IssBackend issb;
    /// Lazy translated executor over `mem` (kTranslated clusters only).
    std::unique_ptr<translate::TranslatedCore> tcore;
    /// Image currently bound on tcore (avoids rebinding per execution).
    std::shared_ptr<const translate::TranslatedProgram> tbound;
    const Image* bound = nullptr;
    bool bound_batched = false;
    kernels::OptLevel bound_level = kernels::OptLevel::kBaseline;
  };

  const Image& image(const std::string& name) const;
  Flavor& flavor(const std::string& name, kernels::OptLevel level);
  /// Lazily translate (and cache) the single flavor / batched program.
  /// Serving programs are verifier-clean by construction, so a refused
  /// translation is a configuration error (fatal check).
  std::shared_ptr<const translate::TranslatedProgram> translated_single(
      const std::string& name, kernels::OptLevel level);
  std::shared_ptr<const translate::TranslatedProgram> translated_batched(
      const std::string& name);
  void build_flavor(Image& img, kernels::OptLevel level,
                    const activation::PlaTable& tanh_tbl,
                    const activation::PlaTable& sig_tbl);
  /// Execute whatever is bound on `lane`; fills cycles/failure/fault_events
  /// of `out`. `fault` != nullptr arms a campaign confined to
  /// [data_lo, data_hi) private TCDM plus regfile/SPR/PLA targets, with
  /// `watchdog` as the cycle bound.
  void run_bound(Lane& lane, exec::ExecutionBackend& be, const std::string& obs_name,
                 const obs::RegionMap& regions, uint32_t text_base,
                 const fault::FaultSpec* fault, uint32_t data_lo, uint32_t data_hi,
                 uint64_t watchdog, ExecResult* out);
  void accumulate_regions(const std::string& obs_name, const obs::RegionMap& map,
                          const std::vector<obs::RegionCounters>& counters,
                          const obs::RegionCounters& unattributed);

  ClusterConfig cfg_;
  std::vector<std::string> names_;
  std::map<std::string, Image> images_;
  std::vector<Lane> lanes_;
  /// Pristine PLA tables for post-campaign LUT scrubbing.
  activation::PlaTable tanh_pristine_;
  activation::PlaTable sig_pristine_;
  std::vector<std::pair<std::string, uint64_t>> region_cycles_;
  std::vector<obs::NetObservation> observations_;  ///< per-flavor region trees
};

}  // namespace rnnasip::serve
