#include "src/serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "src/common/check.h"
#include "src/common/fixed_point.h"
#include "src/common/rng.h"
#include "src/obs/trace_export.h"

namespace rnnasip::serve {

namespace {

/// Per-execution campaign seed: derive_stream over (campaign seed, execution
/// index), so one seed reproduces every execution's flip schedule bit-exactly.
/// (The shared helper uses the exact mixing this file originally inlined, so
/// blessed resilience envelopes stay byte-identical.)
uint64_t mix_seed(uint64_t seed, uint64_t n) { return derive_stream(seed, n); }

std::shared_ptr<ServingTelemetry> make_telemetry(const SchedulerConfig& cfg) {
  if (!cfg.telemetry.enabled) return nullptr;
  obs::SpanCollector::Options opt;
  opt.sample_every = cfg.telemetry.sample_every;
  opt.max_tracks = cfg.telemetry.max_tracks;
  return std::make_shared<ServingTelemetry>(opt);
}

/// Completion-time telemetry shared by both event loops.
void record_completion(ServingTelemetry& tel, const Completion& c, uint64_t done) {
  tel.spans.close(c.id, obs::SpanOutcome::kServed, done);
  tel.metrics.counter("served").inc();
  if (!c.met_deadline()) tel.metrics.counter("deadline_misses").inc();
  tel.metrics.histogram("latency_cycles").record(c.latency());
  tel.metrics.histogram("wait_cycles").record(c.wait_cycles);
  tel.metrics.histogram("exec_cycles").record(c.exec_cycles);
}

}  // namespace

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFifo: return "fifo";
    case Policy::kBatched: return "batched";
    case Policy::kDeadline: return "deadline";
  }
  return "?";
}

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kCalibrated: return "calibrated";
    case Admission::kProvable: return "provable";
  }
  return "?";
}

Workload make_poisson_workload(const Cluster& cluster, const WorkloadConfig& cfg) {
  RNNASIP_CHECK(!cfg.networks.empty());
  RNNASIP_CHECK(cfg.requests >= 0);
  RNNASIP_CHECK(cfg.mean_interarrival_cycles > 0);
  Workload w;
  w.config = cfg;
  Rng rng(cfg.seed);
  // Deadlines draw from a separate derived stream: turning slack on (or
  // changing it) overlays deadlines on the *same* request stream, and a
  // slack of 0 is the deadline-free workload bit-for-bit.
  Rng deadline_rng(cfg.seed ^ 0xDEADC0DEull);
  double t = 0;
  for (int i = 0; i < cfg.requests; ++i) {
    Job job;
    job.id = static_cast<uint64_t>(i);
    job.network = cfg.networks[rng.next_below(static_cast<uint32_t>(cfg.networks.size()))];
    // Exponential inter-arrival: -mean * ln(U), U in (0, 1].
    const double u = 1.0 - rng.next_double();
    t += -cfg.mean_interarrival_cycles * std::log(u);
    job.arrival = static_cast<uint64_t>(t);
    const int n = cluster.network(job.network).input_count();
    job.input.resize(static_cast<size_t>(n));
    for (auto& v : job.input) v = static_cast<int16_t>(quantize(rng.next_in(-1.0, 1.0)));
    if (cfg.deadline_slack_cycles > 0) {
      const double slack = cfg.deadline_slack_cycles * (0.5 + deadline_rng.next_double());
      job.deadline = job.arrival + std::max<uint64_t>(1, static_cast<uint64_t>(slack));
    }
    w.jobs.push_back(std::move(job));
  }
  return w;
}

Scheduler::Scheduler(Cluster* cluster, Policy policy)
    : Scheduler(cluster, SchedulerConfig{.policy = policy}) {}

Scheduler::Scheduler(Cluster* cluster, SchedulerConfig config)
    : cluster_(cluster), cfg_(std::move(config)) {
  RNNASIP_CHECK(cluster != nullptr);
  RNNASIP_CHECK(cfg_.max_retries >= 0);
  RNNASIP_CHECK(cfg_.quarantine_threshold >= 1);
  RNNASIP_CHECK(cfg_.miss_window >= 1);
}

ServeResult Scheduler::run(const Workload& workload) {
  if (cfg_.integrity.detect || cfg_.integrity.preemption) {
    return run_segmented(workload);
  }
  return run_plain(workload);
}

ServeResult Scheduler::run_plain(const Workload& workload) {
  ServeResult r;
  r.policy = cfg_.policy;
  r.cores = cluster_->cores();
  r.batch = cluster_->config().batch;
  r.core_busy.assign(static_cast<size_t>(r.cores), 0);
  r.completions.resize(workload.jobs.size());
  std::vector<char> served(workload.jobs.size(), 0);
  const std::shared_ptr<ServingTelemetry> tel = make_telemetry(cfg_);
  r.telemetry = tel;

  /// A queued request: the original job plus its retry state. `ready` is
  /// the arrival for the first attempt, failure time + backoff afterwards.
  /// `span_at` is where the request's span timeline last ended (arrival,
  /// then each failed attempt's finish) — the begin of its next wait phase.
  struct Pend {
    const Job* job = nullptr;
    int attempts = 0;
    uint64_t ready = 0;
    uint64_t span_at = 0;
  };
  std::vector<Pend> pending;
  pending.reserve(workload.jobs.size());
  for (const Job& j : workload.jobs) pending.push_back({&j, 0, j.arrival, j.arrival});

  const kernels::OptLevel primary = cluster_->config().level;
  const bool can_fallback = cfg_.level_fallback &&
                            cluster_->config().fallback_level.has_value() &&
                            *cluster_->config().fallback_level != primary;
  const bool faults_on = cfg_.fault.any_enabled();
  constexpr uint64_t kNoDeadline = std::numeric_limits<uint64_t>::max();

  std::vector<uint64_t> core_free(static_cast<size_t>(r.cores), 0);
  std::vector<int> consec_fail(static_cast<size_t>(r.cores), 0);
  uint64_t exec_counter = 0;

  // Degraded-mode state: a ring of the last miss_window completions'
  // deadline outcomes plus the overload flag and its open interval.
  std::vector<char> miss_ring(static_cast<size_t>(cfg_.miss_window), 0);
  size_t miss_head = 0, miss_count = 0, misses_in_ring = 0;
  bool degraded = false;
  uint64_t degraded_since = 0;
  auto note_deadline_outcome = [&](bool missed) {
    if (miss_count == miss_ring.size()) {
      misses_in_ring -= miss_ring[miss_head] ? 1u : 0u;
    } else {
      ++miss_count;
    }
    miss_ring[miss_head] = missed ? 1 : 0;
    miss_head = (miss_head + 1) % miss_ring.size();
    misses_in_ring += missed ? 1u : 0u;
  };
  auto miss_fraction = [&] {
    return miss_count == 0 ? 0.0
                           : static_cast<double>(misses_in_ring) /
                                 static_cast<double>(miss_count);
  };

  while (!pending.empty()) {
    // The core that frees earliest serves next (ties: lowest index).
    int core = 0;
    for (int c = 1; c < r.cores; ++c) {
      if (core_free[static_cast<size_t>(c)] < core_free[static_cast<size_t>(core)]) core = c;
    }
    const uint64_t now = core_free[static_cast<size_t>(core)];

    // Select the next request. FIFO/batched: oldest ready time (ties:
    // lowest id). Deadline: EDF over the requests already ready by `now`;
    // when none is ready yet, the one that becomes ready first.
    size_t pick = 0;
    if (cfg_.policy == Policy::kDeadline) {
      size_t best_ready = pending.size();
      uint64_t best_deadline = kNoDeadline;
      size_t best_wait = 0;
      for (size_t i = 0; i < pending.size(); ++i) {
        const Pend& p = pending[i];
        if (p.ready <= now) {
          const uint64_t d = p.job->deadline == 0 ? kNoDeadline : p.job->deadline;
          if (best_ready == pending.size() || d < best_deadline ||
              (d == best_deadline && p.job->id < pending[best_ready].job->id)) {
            best_ready = i;
            best_deadline = d;
          }
        } else if (best_ready == pending.size()) {
          const Pend& b = pending[best_wait];
          if (i == 0 || p.ready < b.ready ||
              (p.ready == b.ready && p.job->id < b.job->id)) {
            best_wait = i;
          }
        }
      }
      pick = best_ready != pending.size() ? best_ready : best_wait;
    } else {
      for (size_t i = 1; i < pending.size(); ++i) {
        const Pend& p = pending[i];
        const Pend& b = pending[pick];
        if (p.ready < b.ready || (p.ready == b.ready && p.job->id < b.job->id)) pick = i;
      }
    }

    const Job& head = *pending[pick].job;
    const uint64_t start = std::max(now, pending[pick].ready);

    // Re-evaluate overload before choosing this execution's level. The
    // queue-depth trigger counts requests already waiting at `start`.
    if (can_fallback) {
      size_t depth = 0;
      for (const Pend& p : pending)
        if (p.ready <= start) ++depth;
      const bool miss_overload =
          miss_count > 0 && miss_fraction() >= cfg_.overload_miss_rate;
      const bool queue_overload =
          cfg_.overload_queue_depth > 0 && depth > cfg_.overload_queue_depth;
      const bool queue_calm =
          cfg_.overload_queue_depth == 0 || depth <= cfg_.overload_queue_depth / 2;
      if (!degraded && (miss_overload || queue_overload)) {
        degraded = true;
        degraded_since = start;
      } else if (degraded && !miss_overload && !queue_overload &&
                 miss_fraction() <= cfg_.recover_miss_rate && queue_calm) {
        degraded = false;
        r.fallback_intervals.push_back({degraded_since, start});
      }
    }
    const bool use_fallback = can_fallback && degraded;
    const kernels::OptLevel level =
        use_fallback ? *cluster_->config().fallback_level : primary;

    // Admission control (kDeadline): reject a request whose estimated
    // completion already blows its deadline instead of burning a core on
    // it. kProvable charges the certified WCET, so passing this test is a
    // guarantee, not a prediction.
    if (cfg_.policy == Policy::kDeadline && head.deadline != 0) {
      const uint64_t est =
          cfg_.admission == Admission::kProvable
              ? cluster_->provable_single_cycles(head.network, level)
              : cluster_->estimated_single_cycles(head.network, level);
      if (start + est > head.deadline) {
        r.rejections.push_back({head.id, head.network, head.arrival, head.deadline, now});
        if (tel) {
          const Pend& p = pending[pick];
          if (p.attempts == 0) tel->spans.arrive(head.id, head.network, head.arrival);
          tel->spans.phase(head.id, obs::SpanPhase::kWait, -1, p.span_at, start);
          tel->spans.mark(head.id, obs::SpanMark::kReject, -1, start);
          tel->spans.close(head.id, obs::SpanOutcome::kRejected, start);
          tel->metrics.counter("rejected").inc();
        }
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
        continue;
      }
    }

    // Coalesce: same network, already ready by `start`, up to B total.
    // Batching stays off for the deadline policy (EDF order is per
    // request) and while degraded (the fallback flavor is single-only).
    std::vector<size_t> group{pick};
    if (cfg_.policy == Policy::kBatched && !use_fallback &&
        cluster_->batchable(head.network)) {
      const int cap = cluster_->config().batch;
      for (size_t i = 0; i < pending.size() && static_cast<int>(group.size()) < cap;
           ++i) {
        if (i == pick) continue;
        if (pending[i].job->network == head.network && pending[i].ready <= start) {
          group.push_back(i);
        }
      }
      // The fixed-B program always runs all B lanes. From level d up the
      // batched schedule is the fused per-sample one (see emit_fc_batch), so
      // a lane costs the same as a single run and padded lanes are pure
      // loss: coalesce only full groups there. At levels <= c the 2-D tile
      // amortizes weight loads across lanes, which pays even part-filled.
      if (cluster_->config().level >= kernels::OptLevel::kLoadCompute &&
          static_cast<int>(group.size()) < cap) {
        group.resize(1);
      }
    }

    if (tel) {
      for (size_t gi : group) {
        const Pend& p = pending[gi];
        const Job& job = *p.job;
        if (p.attempts == 0) tel->spans.arrive(job.id, job.network, job.arrival);
        tel->spans.phase(job.id, obs::SpanPhase::kWait, -1, p.span_at, start);
        tel->spans.mark(job.id,
                        p.attempts == 0 ? obs::SpanMark::kAdmit
                                        : obs::SpanMark::kDispatch,
                        core, start);
      }
      obs::Gauge& depth_peak = tel->metrics.gauge("queue_depth_peak");
      if (static_cast<int64_t>(pending.size()) > depth_peak.value()) {
        depth_peak.set(static_cast<int64_t>(pending.size()));
      }
    }

    // Per-execution campaign spec: same template, execution-mixed seed.
    fault::FaultSpec exec_fault;
    if (faults_on) {
      exec_fault = cfg_.fault;
      exec_fault.seed = mix_seed(cfg_.fault.seed, exec_counter);
    }
    ++exec_counter;

    ExecResult er;
    if (group.size() == 1) {
      er = cluster_->run_single_at(core, level, head.network, head.input,
                                   faults_on ? &exec_fault : nullptr);
    } else {
      std::vector<std::vector<int16_t>> inputs;
      inputs.reserve(group.size());
      for (size_t gi : group) inputs.push_back(pending[gi].job->input);
      er = cluster_->run_batched(core, head.network, inputs,
                                 faults_on ? &exec_fault : nullptr);
    }
    const uint64_t cycles = er.cycles;
    const uint64_t done = start + cycles;
    for (const auto& ev : er.fault_events) {
      ++r.fault_events_total;
      if (r.fault_log.size() < cfg_.max_fault_log) {
        r.fault_log.push_back({core, head.id, ev});
      } else {
        r.fault_log_truncated = true;
      }
    }
    if (tel && !er.fault_events.empty()) {
      tel->spans.mark(head.id, obs::SpanMark::kFault, core, done);
      tel->metrics.counter("fault_events").inc(er.fault_events.size());
    }

    if (er.ok()) {
      consec_fail[static_cast<size_t>(core)] = 0;
      if (group.size() == 1) {
        ++r.single_execs;
      } else {
        ++r.batched_execs;
        r.batched_requests += group.size();
        r.padded_slots +=
            static_cast<uint64_t>(cluster_->config().batch) - group.size();
      }
      if (use_fallback) {
        ++r.fallback_execs;
        r.fallback_cycles += cycles;
      }
      for (size_t k = 0; k < group.size(); ++k) {
        const Pend& p = pending[group[k]];
        const Job& job = *p.job;
        Completion c;
        c.id = job.id;
        c.network = job.network;
        c.core = core;
        c.group = static_cast<int>(group.size());
        c.level = level;
        c.retries = p.attempts;
        c.arrival = job.arrival;
        c.deadline = job.deadline;
        c.start = start;
        c.done = done;
        c.wait_cycles = start - job.arrival;
        c.exec_cycles = cycles;
        if (cfg_.retain_outputs) c.outputs = std::move(er.outputs[k]);
        if (!c.met_deadline()) ++r.deadline_misses;
        if (job.deadline != 0) note_deadline_outcome(!c.met_deadline());
        if (tel) {
          tel->spans.phase(job.id, obs::SpanPhase::kExec, core, start, done);
          record_completion(*tel, c, done);
        }
        RNNASIP_CHECK(job.id < r.completions.size());
        served[job.id] = 1;
        r.completions[job.id] = std::move(c);
      }
      // Remove the group back-to-front so indices stay valid.
      std::sort(group.begin(), group.end());
      for (size_t k = group.size(); k-- > 0;) {
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(group[k]));
      }
    } else {
      ++r.exec_failures;
      r.retry_cycles += cycles;
      const int fails = ++consec_fail[static_cast<size_t>(core)];
      // Requeue (bounded retries with deterministic backoff) or drop.
      if (tel) tel->metrics.counter("exec_failures").inc();
      std::vector<size_t> dropped;
      for (size_t gi : group) {
        Pend& p = pending[gi];
        ++p.attempts;
        if (tel) {
          // The whole attempt was lost: its on-core cycles are kRetry.
          tel->spans.phase(p.job->id, obs::SpanPhase::kRetry, core, start, done);
          tel->spans.mark(p.job->id, obs::SpanMark::kFailure, core, done);
        }
        if (p.attempts > cfg_.max_retries) {
          r.failed.push_back({p.job->id, p.job->network, p.attempts,
                              er.failure->trap.cause});
          dropped.push_back(gi);
          if (tel) {
            tel->spans.close(p.job->id, obs::SpanOutcome::kFailed, done);
            tel->metrics.counter("failed").inc();
          }
        } else {
          ++r.retries;
          p.ready = done + static_cast<uint64_t>(p.attempts) * cfg_.retry_backoff_cycles;
          p.span_at = done;
          if (tel) tel->metrics.counter("retries").inc();
        }
      }
      std::sort(dropped.begin(), dropped.end());
      for (size_t k = dropped.size(); k-- > 0;) {
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(dropped[k]));
      }
      if (fails >= cfg_.quarantine_threshold) {
        r.quarantines.push_back({core, done, done + cfg_.quarantine_cooldown_cycles});
        r.quarantine_cycles += cfg_.quarantine_cooldown_cycles;
        consec_fail[static_cast<size_t>(core)] = 0;
      }
    }

    const bool quarantined_now =
        !r.quarantines.empty() && r.quarantines.back().core == core &&
        r.quarantines.back().from == done;
    core_free[static_cast<size_t>(core)] =
        quarantined_now ? r.quarantines.back().to : done;
    r.core_busy[static_cast<size_t>(core)] += cycles;
    r.makespan = std::max(r.makespan, done);
  }
  if (degraded) r.fallback_intervals.push_back({degraded_since, r.makespan});

  // Compact: completions keep only served requests (ordered by id since
  // the slots were id-indexed).
  std::vector<Completion> compact;
  compact.reserve(r.completions.size());
  for (size_t i = 0; i < r.completions.size(); ++i) {
    if (served[i]) compact.push_back(std::move(r.completions[i]));
  }
  r.completions = std::move(compact);
  return r;
}

ServeResult Scheduler::run_segmented(const Workload& workload) {
  RNNASIP_CHECK_MSG(cfg_.policy != Policy::kBatched,
                    "segmented integrity serving runs single executions only");
  RNNASIP_CHECK_MSG(cluster_->config().integrity,
                    "integrity scheduling needs a cluster built with "
                    "ClusterConfig::integrity");
  if (cfg_.integrity.preemption) {
    RNNASIP_CHECK_MSG(cfg_.policy == Policy::kDeadline,
                      "layer-boundary preemption is EDF: it requires "
                      "Policy::kDeadline");
  }

  ServeResult r;
  r.policy = cfg_.policy;
  r.cores = cluster_->cores();
  r.batch = cluster_->config().batch;
  r.core_busy.assign(static_cast<size_t>(r.cores), 0);
  r.completions.resize(workload.jobs.size());
  std::vector<char> served(workload.jobs.size(), 0);
  const std::shared_ptr<ServingTelemetry> tel = make_telemetry(cfg_);
  r.telemetry = tel;

  struct Pend {
    const Job* job = nullptr;
    int attempts = 0;
    uint64_t ready = 0;
    uint64_t span_at = 0;  ///< where the request's span timeline last ended
  };
  std::vector<Pend> pending;
  pending.reserve(workload.jobs.size());
  for (const Job& j : workload.jobs) pending.push_back({&j, 0, j.arrival, j.arrival});

  const kernels::OptLevel primary = cluster_->config().level;
  const bool can_fallback = cfg_.level_fallback &&
                            cluster_->config().fallback_level.has_value() &&
                            *cluster_->config().fallback_level != primary;
  const bool faults_on = cfg_.fault.any_enabled();
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();

  /// One in-flight attempt: the CheckedRun plus its scheduling context and
  /// the buffered outcome of its next segment. Stepping only touches the
  /// attempt's own core, so segments run eagerly to learn their boundary
  /// times; the scheduler state changes only when the event is processed
  /// in global time order.
  struct Active {
    const Job* job = nullptr;
    int attempts = 0;
    kernels::OptLevel level = kernels::OptLevel::kBaseline;
    bool use_fallback = false;
    bool faulted = false;
    uint64_t start = 0;        ///< dispatch cycle of this attempt
    uint64_t exec_cycles = 0;  ///< executing cycles over all its segments
    int preemptions = 0;
    std::unique_ptr<integrity::CheckedRun> run;
    std::unique_ptr<fault::FaultInjector> injector;
    bool has_event = false;
    integrity::CheckedRun::State ev_state = integrity::CheckedRun::State::kDone;
    uint64_t ev_cycles = 0;  ///< the buffered segment's cycles
    // Telemetry bookkeeping: the buffered segment's integrity deltas
    // (step_counters at buffering time — the next step() resets them) and
    // this attempt's surviving-exec accounting for failure reclassification.
    uint64_t ev_rollback_cycles = 0;
    uint64_t ev_detections = 0;
    uint64_t ev_rollbacks = 0;
    size_t span_anchor = 0;   ///< retained-segment index at dispatch
    uint64_t span_exec = 0;   ///< kExec cycles emitted for this attempt
  };
  struct Suspended {
    std::unique_ptr<Active> ctx;
    uint64_t since = 0;  ///< suspension cycle (gap accounting)
  };
  std::vector<std::unique_ptr<Active>> active(static_cast<size_t>(r.cores));
  std::vector<Suspended> suspended;
  std::vector<uint64_t> clock(static_cast<size_t>(r.cores), 0);
  std::vector<int> consec_fail(static_cast<size_t>(r.cores), 0);
  uint64_t exec_counter = 0;

  // Degraded-mode state, identical to run_plain.
  std::vector<char> miss_ring(static_cast<size_t>(cfg_.miss_window), 0);
  size_t miss_head = 0, miss_count = 0, misses_in_ring = 0;
  bool degraded = false;
  uint64_t degraded_since = 0;
  auto note_deadline_outcome = [&](bool missed) {
    if (miss_count == miss_ring.size()) {
      misses_in_ring -= miss_ring[miss_head] ? 1u : 0u;
    } else {
      ++miss_count;
    }
    miss_ring[miss_head] = missed ? 1 : 0;
    miss_head = (miss_head + 1) % miss_ring.size();
    misses_in_ring += missed ? 1u : 0u;
  };
  auto miss_fraction = [&] {
    return miss_count == 0 ? 0.0
                           : static_cast<double>(misses_in_ring) /
                                 static_cast<double>(miss_count);
  };

  auto deadline_of = [&](const Job& j) { return j.deadline == 0 ? kInf : j.deadline; };
  // Attempt-end accounting shared by success and failure: integrity
  // counters, fault-event attribution, and core hygiene.
  auto retire = [&](int c, Active& a) {
    const integrity::IntegrityCounters& ic = a.run->counters();
    r.integrity_checks += ic.checks;
    r.integrity_detections += ic.detections;
    r.rollbacks += ic.rollbacks;
    r.rollback_cycles += ic.rollback_cycles;
    if (a.injector) {
      for (const auto& ev : a.injector->events()) {
        ++r.fault_events_total;
        if (r.fault_log.size() < cfg_.max_fault_log) {
          r.fault_log.push_back({c, a.job->id, ev});
        } else {
          r.fault_log_truncated = true;
        }
      }
      if (tel && !a.injector->events().empty()) {
        tel->spans.mark(a.job->id, obs::SpanMark::kFault, c,
                        clock[static_cast<size_t>(c)]);
        tel->metrics.counter("fault_events").inc(a.injector->events().size());
      }
      a.injector->disarm();
    }
    if (a.faulted) cluster_->scrub_pla(c);
  };
  auto any_active = [&] {
    for (const auto& a : active)
      if (a) return true;
    return false;
  };

  while (!pending.empty() || !suspended.empty() || any_active()) {
    // Buffer every active core's next segment.
    for (int c = 0; c < r.cores; ++c) {
      Active* a = active[static_cast<size_t>(c)].get();
      if (a == nullptr || a->has_event) continue;
      const uint64_t before = a->run->cycles();
      a->ev_state = a->run->step();
      a->ev_cycles = a->run->cycles() - before;
      const integrity::IntegrityCounters sc = a->run->step_counters();
      a->ev_rollback_cycles = sc.rollback_cycles;
      a->ev_detections = sc.detections;
      a->ev_rollbacks = sc.rollbacks;
      a->has_event = true;
    }

    // Next event in global time order: a buffered segment completing, or
    // an idle core dispatching. Ties prefer segment events (a completion
    // at t frees its core before a dispatch at t), then the lowest core.
    uint64_t min_ready = kInf;
    for (const Pend& p : pending) min_ready = std::min(min_ready, p.ready);
    int best_core = -1;
    bool best_dispatch = false;
    uint64_t best_time = kInf;
    for (int c = 0; c < r.cores; ++c) {
      const size_t ci = static_cast<size_t>(c);
      uint64_t t = 0;
      bool disp = false;
      if (active[ci]) {
        t = clock[ci] + active[ci]->ev_cycles;
      } else if (!suspended.empty()) {
        t = clock[ci];  // a suspended run can resume immediately
        disp = true;
      } else if (min_ready != kInf) {
        t = std::max(clock[ci], min_ready);
        disp = true;
      } else {
        continue;
      }
      if (best_core < 0 || t < best_time ||
          (t == best_time && !disp && best_dispatch)) {
        best_time = t;
        best_core = c;
        best_dispatch = disp;
      }
    }
    RNNASIP_CHECK(best_core >= 0);
    const int core = best_core;
    const size_t ci = static_cast<size_t>(core);
    const uint64_t now = best_time;

    if (!best_dispatch) {
      // ---- Segment event: boundary, completion, or failure ----
      Active& a = *active[ci];
      a.has_event = false;
      clock[ci] = now;
      r.core_busy[ci] += a.ev_cycles;
      a.exec_cycles += a.ev_cycles;
      r.makespan = std::max(r.makespan, now);

      if (tel && a.ev_cycles != 0) {
        // The segment ran on this core over [now - ev_cycles, now). Its
        // rollback re-execution cycles (step_counters delta) tile the
        // front of the interval as kRollback; the surviving work is kExec
        // — or kRetry outright when the whole attempt just died.
        const uint64_t id = a.job->id;
        const uint64_t t0 = now - a.ev_cycles;
        const uint64_t rb = a.ev_rollback_cycles;
        RNNASIP_CHECK(rb <= a.ev_cycles);
        const bool died = a.ev_state == integrity::CheckedRun::State::kFailed;
        if (rb != 0) {
          tel->spans.phase(id, obs::SpanPhase::kRollback, core, t0, t0 + rb);
          tel->spans.mark(id, obs::SpanMark::kRollback, core, t0 + rb);
          tel->metrics.counter("rollbacks").inc(a.ev_rollbacks);
        }
        if (a.ev_detections != 0) {
          tel->spans.mark(id, obs::SpanMark::kDetection, core, now);
          tel->metrics.counter("integrity_detections").inc(a.ev_detections);
        }
        tel->spans.phase(id, died ? obs::SpanPhase::kRetry : obs::SpanPhase::kExec,
                         core, t0 + rb, now);
        if (!died) {
          a.span_exec += a.ev_cycles - rb;
          if (a.ev_state == integrity::CheckedRun::State::kBoundary) {
            tel->spans.mark(id, obs::SpanMark::kBoundary, core, now);
          }
        }
      }

      if (a.ev_state == integrity::CheckedRun::State::kBoundary) {
        if (cfg_.integrity.preemption) {
          // EDF preemption: a ready request with a strictly earlier
          // deadline takes the core — unless another core sits idle at
          // `now` and would pick it up anyway.
          bool idle_elsewhere = false;
          for (int c2 = 0; c2 < r.cores; ++c2) {
            if (c2 != core && !active[static_cast<size_t>(c2)] &&
                clock[static_cast<size_t>(c2)] <= now) {
              idle_elsewhere = true;
              break;
            }
          }
          uint64_t challenger = kInf;
          if (!idle_elsewhere) {
            for (const Pend& p : pending) {
              if (p.ready <= now) challenger = std::min(challenger, deadline_of(*p.job));
            }
          }
          if (challenger < deadline_of(*a.job)) {
            // The checkpoint taken at this verified boundary carries the
            // whole resumable state; disarm and scrub so the next
            // occupant starts from clean physical core state.
            if (a.injector) a.injector->disarm();
            if (a.faulted) cluster_->scrub_pla(core);
            ++a.preemptions;
            ++r.preemptions;
            if (tel) {
              tel->spans.mark(a.job->id, obs::SpanMark::kPreempt, core, now);
              tel->metrics.counter("preemptions").inc();
            }
            suspended.push_back({std::move(active[ci]), now});
          }
        }
        continue;  // not preempted: the next iteration buffers the next segment
      }

      std::unique_ptr<Active> ended = std::move(active[ci]);
      Active& d = *ended;
      retire(core, d);
      if (d.ev_state == integrity::CheckedRun::State::kDone) {
        consec_fail[ci] = 0;
        ++r.single_execs;
        if (d.use_fallback) {
          ++r.fallback_execs;
          r.fallback_cycles += d.exec_cycles;
        }
        const Job& job = *d.job;
        Completion comp;
        comp.id = job.id;
        comp.network = job.network;
        comp.core = core;
        comp.group = 1;
        comp.level = d.level;
        comp.retries = d.attempts;
        comp.preemptions = d.preemptions;
        comp.arrival = job.arrival;
        comp.deadline = job.deadline;
        comp.start = d.start;
        comp.done = now;
        comp.exec_cycles = d.exec_cycles;
        comp.wait_cycles = now - job.arrival - d.exec_cycles;
        if (cfg_.retain_outputs) comp.outputs = d.run->outputs();
        if (!comp.met_deadline()) ++r.deadline_misses;
        if (job.deadline != 0) note_deadline_outcome(!comp.met_deadline());
        if (tel) record_completion(*tel, comp, now);
        RNNASIP_CHECK(job.id < r.completions.size());
        served[job.id] = 1;
        r.completions[job.id] = std::move(comp);
      } else {
        ++r.exec_failures;
        r.retry_cycles += d.exec_cycles;
        if (d.run->integrity_failed()) ++r.integrity_escalations;
        const int fails = ++consec_fail[ci];
        const int attempts = d.attempts + 1;
        if (tel) {
          // The attempt died: its earlier boundary segments were emitted
          // as surviving kExec — retroactively they are kRetry (discarded
          // work), moved in the accumulators and relabeled in the sampled
          // timeline from this attempt's dispatch anchor on.
          tel->spans.mark(d.job->id, obs::SpanMark::kFailure, core, now);
          tel->spans.reclassify(d.job->id, d.span_anchor, obs::SpanPhase::kExec,
                                obs::SpanPhase::kRetry, d.span_exec);
          tel->metrics.counter("exec_failures").inc();
        }
        if (attempts > cfg_.max_retries) {
          r.failed.push_back({d.job->id, d.job->network, attempts,
                              d.run->last_result().trap.cause});
          if (tel) {
            tel->spans.close(d.job->id, obs::SpanOutcome::kFailed, now);
            tel->metrics.counter("failed").inc();
          }
        } else {
          ++r.retries;
          pending.push_back(
              {d.job, attempts,
               now + static_cast<uint64_t>(attempts) * cfg_.retry_backoff_cycles,
               now});
          if (tel) tel->metrics.counter("retries").inc();
        }
        if (fails >= cfg_.quarantine_threshold) {
          r.quarantines.push_back({core, now, now + cfg_.quarantine_cooldown_cycles});
          r.quarantine_cycles += cfg_.quarantine_cooldown_cycles;
          consec_fail[ci] = 0;
          clock[ci] = now + cfg_.quarantine_cooldown_cycles;
        }
      }
      continue;
    }

    // ---- Dispatch event on an idle core at `now` ----
    clock[ci] = now;

    // Select: EDF over suspended runs (always resumable) and ready
    // pending requests; on a deadline tie the part-executed suspended run
    // wins. FIFO never has suspended runs (preemption is EDF-only).
    size_t s_pick = suspended.size();
    size_t p_pick = pending.size();
    if (cfg_.policy == Policy::kDeadline) {
      for (size_t i = 0; i < suspended.size(); ++i) {
        const Job& j = *suspended[i].ctx->job;
        if (s_pick == suspended.size() ||
            deadline_of(j) < deadline_of(*suspended[s_pick].ctx->job) ||
            (deadline_of(j) == deadline_of(*suspended[s_pick].ctx->job) &&
             j.id < suspended[s_pick].ctx->job->id)) {
          s_pick = i;
        }
      }
      for (size_t i = 0; i < pending.size(); ++i) {
        const Pend& p = pending[i];
        if (p.ready > now) continue;
        if (p_pick == pending.size() ||
            deadline_of(*p.job) < deadline_of(*pending[p_pick].job) ||
            (deadline_of(*p.job) == deadline_of(*pending[p_pick].job) &&
             p.job->id < pending[p_pick].job->id)) {
          p_pick = i;
        }
      }
      if (s_pick != suspended.size() && p_pick != pending.size()) {
        if (deadline_of(*pending[p_pick].job) <
            deadline_of(*suspended[s_pick].ctx->job)) {
          s_pick = suspended.size();
        } else {
          p_pick = pending.size();
        }
      }
    } else {
      for (size_t i = 0; i < pending.size(); ++i) {
        const Pend& p = pending[i];
        if (p_pick == pending.size() || p.ready < pending[p_pick].ready ||
            (p.ready == pending[p_pick].ready && p.job->id < pending[p_pick].job->id)) {
          p_pick = i;
        }
      }
    }
    RNNASIP_CHECK(s_pick != suspended.size() || p_pick != pending.size());

    if (s_pick != suspended.size()) {
      // Resume the suspended run here — possibly on a different core than
      // it left; the checkpoint restore is bit-identical either way.
      std::unique_ptr<Active> ctx = std::move(suspended[s_pick].ctx);
      const uint64_t since = suspended[s_pick].since;
      suspended.erase(suspended.begin() + static_cast<std::ptrdiff_t>(s_pick));
      cluster_->bind(core, ctx->job->network, false, ctx->level);
      const integrity::Checkpoint cp = ctx->run->checkpoint();
      ctx->run->resume(&cluster_->backend(core, ctx->faulted), &cluster_->memory(core),
                       cp);
      if (ctx->injector) {
        ctx->injector->arm(&cluster_->core(core), &cluster_->memory(core));
      }
      r.preempted_cycles += now - since;
      if (tel) {
        tel->spans.phase(ctx->job->id, obs::SpanPhase::kPreempted, -1, since, now);
        tel->spans.mark(ctx->job->id, obs::SpanMark::kResume, core, now);
      }
      active[ci] = std::move(ctx);
      continue;
    }

    const Job& head = *pending[p_pick].job;
    const int attempts = pending[p_pick].attempts;
    const uint64_t start = now;

    // Overload re-evaluation and admission control, as in run_plain.
    if (can_fallback) {
      size_t depth = 0;
      for (const Pend& p : pending)
        if (p.ready <= start) ++depth;
      const bool miss_overload =
          miss_count > 0 && miss_fraction() >= cfg_.overload_miss_rate;
      const bool queue_overload =
          cfg_.overload_queue_depth > 0 && depth > cfg_.overload_queue_depth;
      const bool queue_calm =
          cfg_.overload_queue_depth == 0 || depth <= cfg_.overload_queue_depth / 2;
      if (!degraded && (miss_overload || queue_overload)) {
        degraded = true;
        degraded_since = start;
      } else if (degraded && !miss_overload && !queue_overload &&
                 miss_fraction() <= cfg_.recover_miss_rate && queue_calm) {
        degraded = false;
        r.fallback_intervals.push_back({degraded_since, start});
      }
    }
    const bool use_fallback = can_fallback && degraded;
    const kernels::OptLevel level =
        use_fallback ? *cluster_->config().fallback_level : primary;

    if (cfg_.policy == Policy::kDeadline && head.deadline != 0) {
      const uint64_t est =
          cfg_.admission == Admission::kProvable
              ? cluster_->provable_single_cycles(head.network, level)
              : cluster_->estimated_single_cycles(head.network, level);
      if (start + est > head.deadline) {
        r.rejections.push_back({head.id, head.network, head.arrival, head.deadline, now});
        if (tel) {
          const Pend& p = pending[p_pick];
          if (p.attempts == 0) tel->spans.arrive(head.id, head.network, head.arrival);
          tel->spans.phase(head.id, obs::SpanPhase::kWait, -1, p.span_at, now);
          tel->spans.mark(head.id, obs::SpanMark::kReject, -1, now);
          tel->spans.close(head.id, obs::SpanOutcome::kRejected, now);
          tel->metrics.counter("rejected").inc();
        }
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(p_pick));
        continue;
      }
    }

    fault::FaultSpec exec_fault;
    if (faults_on) {
      exec_fault = cfg_.fault;
      exec_fault.seed = mix_seed(cfg_.fault.seed, exec_counter);
    }
    ++exec_counter;

    auto ctx = std::make_unique<Active>();
    ctx->job = &head;
    ctx->attempts = attempts;
    ctx->level = level;
    ctx->use_fallback = use_fallback;
    ctx->faulted = faults_on;
    ctx->start = start;
    if (tel) {
      const Pend& p = pending[p_pick];
      if (p.attempts == 0) tel->spans.arrive(head.id, head.network, head.arrival);
      tel->spans.phase(head.id, obs::SpanPhase::kWait, -1, p.span_at, start);
      tel->spans.mark(head.id,
                      attempts == 0 ? obs::SpanMark::kAdmit : obs::SpanMark::kDispatch,
                      core, start);
      ctx->span_anchor = tel->spans.segment_count(head.id);
      obs::Gauge& depth_peak = tel->metrics.gauge("queue_depth_peak");
      if (static_cast<int64_t>(pending.size()) > depth_peak.value()) {
        depth_peak.set(static_cast<int64_t>(pending.size()));
      }
    }

    cluster_->bind(core, head.network, false, level);
    const kernels::BuiltNetwork& net = cluster_->built_single(head.network, level);
    integrity::CheckedRunConfig rc;
    rc.detect = cfg_.integrity.detect;
    rc.rollback = cfg_.integrity.rollback;
    rc.layer_retries = cfg_.integrity.layer_retries;
    rc.watchdog_cycles = faults_on ? cluster_->watchdog_cycles(head.network, level) : 0;
    ctx->run = std::make_unique<integrity::CheckedRun>(
        &cluster_->backend(core, faults_on), &cluster_->memory(core), &net, rc);
    if (rc.detect) {
      ctx->run->set_golden(integrity::golden_checks(
          cluster_->network(head.network), cluster_->tanh_table(),
          cluster_->sig_table(), head.input));
    }
    ctx->run->begin(head.input);
    if (faults_on) {
      fault::FaultSpec spec = exec_fault;
      if (spec.tcdm.empty()) {
        spec.tcdm = {kernels::kDataBase, kernels::kDataBase + net.data_bytes};
      }
      spec.text = {};
      ctx->injector = std::make_unique<fault::FaultInjector>(spec);
      ctx->injector->arm(&cluster_->core(core), &cluster_->memory(core));
    }
    active[ci] = std::move(ctx);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(p_pick));
  }
  if (degraded) r.fallback_intervals.push_back({degraded_since, r.makespan});

  std::vector<Completion> compact;
  compact.reserve(r.completions.size());
  for (size_t i = 0; i < r.completions.size(); ++i) {
    if (served[i]) compact.push_back(std::move(r.completions[i]));
  }
  r.completions = std::move(compact);
  return r;
}

uint64_t ServeResult::latency_percentile(double p) const {
  if (completions.empty()) return 0;
  std::vector<uint64_t> lat;
  lat.reserve(completions.size());
  for (const Completion& c : completions) lat.push_back(c.latency());
  std::sort(lat.begin(), lat.end());
  const size_t n = lat.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return lat[rank - 1];
}

double ServeResult::throughput_per_s(double mhz) const {
  if (makespan == 0) return 0;
  return static_cast<double>(completions.size()) /
         (static_cast<double>(makespan) / (mhz * 1e6));
}

double ServeResult::goodput_per_s(double mhz) const {
  if (makespan == 0) return 0;
  uint64_t met = 0;
  for (const Completion& c : completions) met += c.met_deadline() ? 1u : 0u;
  return static_cast<double>(met) / (static_cast<double>(makespan) / (mhz * 1e6));
}

double ServeResult::utilization(int core) const {
  if (makespan == 0) return 0;
  return static_cast<double>(core_busy[static_cast<size_t>(core)]) /
         static_cast<double>(makespan);
}

double ServeResult::batch_occupancy() const {
  const uint64_t lanes = batched_requests + padded_slots;
  return lanes == 0 ? 1.0
                    : static_cast<double>(batched_requests) / static_cast<double>(lanes);
}

obs::Json serve_result_to_json(const ServeResult& r, double mhz) {
  obs::Json j = obs::Json::object();
  // Serving-report schema version (v2: adds this field, fault-log
  // retention markers, and the optional telemetry block — docs/SERVING.md).
  j.set("schema", 2);
  j.set("policy", policy_name(r.policy));
  j.set("cores", r.cores);
  j.set("batch", r.batch);
  j.set("requests", static_cast<uint64_t>(r.completions.size()));
  j.set("makespan_cycles", r.makespan);
  j.set("mhz", mhz);
  j.set("throughput_inf_per_s", r.throughput_per_s(mhz));
  obs::Json lat = obs::Json::object();
  lat.set("p50_cycles", r.latency_percentile(50));
  lat.set("p95_cycles", r.latency_percentile(95));
  lat.set("p99_cycles", r.latency_percentile(99));
  lat.set("p50_us", static_cast<double>(r.latency_percentile(50)) / mhz);
  lat.set("p95_us", static_cast<double>(r.latency_percentile(95)) / mhz);
  lat.set("p99_us", static_cast<double>(r.latency_percentile(99)) / mhz);
  j.set("latency", std::move(lat));
  obs::Json util = obs::Json::array();
  for (int c = 0; c < r.cores; ++c) util.push(r.utilization(c));
  j.set("core_utilization", std::move(util));
  obs::Json batching = obs::Json::object();
  batching.set("single_execs", r.single_execs);
  batching.set("batched_execs", r.batched_execs);
  batching.set("batched_requests", r.batched_requests);
  batching.set("padded_slots", r.padded_slots);
  batching.set("occupancy", r.batch_occupancy());
  j.set("batching", std::move(batching));

  // ---- Resilience block (schema documented in docs/SERVING.md) ----
  obs::Json res = obs::Json::object();
  res.set("admitted", r.admitted());
  res.set("served", static_cast<uint64_t>(r.completions.size()));
  res.set("rejected", static_cast<uint64_t>(r.rejections.size()));
  res.set("failed", static_cast<uint64_t>(r.failed.size()));
  res.set("exec_failures", r.exec_failures);
  res.set("retries", r.retries);
  res.set("deadline_misses", r.deadline_misses);
  res.set("goodput_inf_per_s", r.goodput_per_s(mhz));
  obs::Json rejects = obs::Json::array();
  for (const Rejection& rej : r.rejections) {
    obs::Json o = obs::Json::object();
    o.set("id", rej.id);
    o.set("network", rej.network);
    o.set("arrival", rej.arrival);
    o.set("deadline", rej.deadline);
    o.set("decided_at", rej.decided_at);
    rejects.push(std::move(o));
  }
  res.set("rejections", std::move(rejects));
  obs::Json fails = obs::Json::array();
  for (const FailedRequest& f : r.failed) {
    obs::Json o = obs::Json::object();
    o.set("id", f.id);
    o.set("network", f.network);
    o.set("attempts", f.attempts);
    o.set("last_cause", iss::trap_cause_name(f.last_cause));
    fails.push(std::move(o));
  }
  res.set("failed_requests", std::move(fails));
  obs::Json quars = obs::Json::array();
  for (const QuarantineInterval& q : r.quarantines) {
    obs::Json o = obs::Json::object();
    o.set("core", q.core);
    o.set("from", q.from);
    o.set("to", q.to);
    quars.push(std::move(o));
  }
  res.set("quarantines", std::move(quars));
  obs::Json fbs = obs::Json::array();
  for (const FallbackInterval& f : r.fallback_intervals) {
    obs::Json o = obs::Json::object();
    o.set("from", f.from);
    o.set("to", f.to);
    fbs.push(std::move(o));
  }
  obs::Json fb = obs::Json::object();
  fb.set("execs", r.fallback_execs);
  fb.set("cycles", r.fallback_cycles);
  fb.set("intervals", std::move(fbs));
  res.set("fallback", std::move(fb));
  // Per-level request mix (level letter -> served requests).
  obs::Json mix = obs::Json::object();
  for (kernels::OptLevel lvl : kernels::kAllOptLevels) {
    uint64_t n = 0;
    for (const Completion& c : r.completions) n += c.level == lvl ? 1u : 0u;
    if (n != 0) mix.set(std::string(1, kernels::opt_level_letter(lvl)), n);
  }
  res.set("level_mix", std::move(mix));
  // Integrity-and-recovery record (all-zero under plain scheduling).
  obs::Json integ = obs::Json::object();
  integ.set("checks", r.integrity_checks);
  integ.set("detections", r.integrity_detections);
  integ.set("rollbacks", r.rollbacks);
  integ.set("rollback_cycles", r.rollback_cycles);
  integ.set("escalations", r.integrity_escalations);
  res.set("integrity", std::move(integ));
  obs::Json preempt = obs::Json::object();
  preempt.set("preemptions", r.preemptions);
  preempt.set("preempted_cycles", r.preempted_cycles);
  res.set("preemption", std::move(preempt));
  // The in-memory log is itself capped (SchedulerConfig::max_fault_log);
  // the JSON carries the true total plus a bounded prefix so heavy
  // campaigns bloat neither host memory nor blessed baselines.
  constexpr size_t kMaxFaultEventsInJson = 16;
  res.set("fault_events_total", r.fault_events_total);
  res.set("fault_log_truncated", r.fault_log_truncated);
  res.set("fault_events_truncated", r.fault_events_total > kMaxFaultEventsInJson);
  obs::Json faults = obs::Json::array();
  const size_t n_events = std::min(r.fault_log.size(), kMaxFaultEventsInJson);
  for (size_t i = 0; i < n_events; ++i) {
    const FaultAttribution& fa = r.fault_log[i];
    obs::Json o = obs::Json::object();
    o.set("core", fa.core);
    o.set("request", fa.request);
    o.set("target", fault::target_name(fa.event.target));
    o.set("at_instr", fa.event.at_instr);
    o.set("where", static_cast<uint64_t>(fa.event.where));
    o.set("bit", static_cast<uint64_t>(fa.event.bit));
    faults.push(std::move(o));
  }
  res.set("fault_events", std::move(faults));
  // Scheduler-level cycle accounting, named like obs regions so trace
  // tooling can fold them next to program regions.
  obs::Json regions = obs::Json::object();
  regions.set("serve.retry", r.retry_cycles);
  regions.set("serve.quarantine", r.quarantine_cycles);
  regions.set("serve.fallback", r.fallback_cycles);
  regions.set("serve.rollback", r.rollback_cycles);
  regions.set("serve.preempted", r.preempted_cycles);
  res.set("obs_regions", std::move(regions));
  j.set("resilience", std::move(res));

  // ---- Telemetry block (schema v2; only for telemetered runs) ----
  if (r.telemetry) {
    const ServingTelemetry& t = *r.telemetry;
    obs::Json tj = obs::Json::object();
    obs::Json spans = obs::Json::object();
    spans.set("opened", t.spans.spans_opened());
    spans.set("closed", t.spans.spans_closed());
    spans.set("identity_checks", t.spans.identity_checks());
    // close() asserts the span identity for every request; a report that
    // exists at all proves every check passed.
    spans.set("identity_holds", true);
    obs::Json ph = obs::Json::object();
    for (size_t p = 0; p < obs::kSpanPhaseCount; ++p) {
      ph.set(obs::span_phase_name(static_cast<obs::SpanPhase>(p)),
             t.spans.phase_total(static_cast<obs::SpanPhase>(p)));
    }
    spans.set("phase_cycles", std::move(ph));
    spans.set("sampled_tracks", static_cast<uint64_t>(t.spans.tracks().size()));
    spans.set("tracks_truncated", t.spans.tracks_truncated());
    // Bounded sample of retained timelines, same discipline as the fault
    // log: full detail stays in memory, the report carries a prefix.
    constexpr size_t kMaxSpansInJson = 8;
    spans.set("spans_in_json",
              static_cast<uint64_t>(std::min(t.spans.tracks().size(), kMaxSpansInJson)));
    spans.set("spans_json_truncated", t.spans.tracks().size() > kMaxSpansInJson);
    obs::Json arr = obs::Json::array();
    const size_t nspans = std::min(t.spans.tracks().size(), kMaxSpansInJson);
    for (size_t i = 0; i < nspans; ++i) {
      arr.push(obs::request_span_to_json(t.spans.tracks()[i]));
    }
    spans.set("spans", std::move(arr));
    tj.set("spans", std::move(spans));
    tj.set("metrics", t.metrics.to_json());
    j.set("telemetry", std::move(tj));
  }
  return j;
}

obs::Json serving_perfetto_trace(const ServeResult& r) {
  RNNASIP_CHECK_MSG(r.telemetry != nullptr,
                    "serving_perfetto_trace needs a telemetered run "
                    "(SchedulerConfig::telemetry.enabled)");
  obs::Json events = obs::span_perfetto_events(r.telemetry->spans.tracks(), r.cores);
  events.push(obs::perfetto_process_name(1, "serving cluster"));
  // Cluster-level intervals on the same tracks: quarantine windows on the
  // affected core, fallback (degraded-mode) windows on the scheduler track.
  for (const QuarantineInterval& q : r.quarantines) {
    events.push(obs::perfetto_complete(1, q.core + 1, "quarantine", "serve",
                                       q.from, q.to - q.from));
  }
  for (const FallbackInterval& f : r.fallback_intervals) {
    events.push(obs::perfetto_complete(1, 0, "fallback", "serve", f.from,
                                       f.to - f.from));
  }
  obs::Json root = obs::Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ns");
  return root;
}

}  // namespace rnnasip::serve
