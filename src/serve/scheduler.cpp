#include "src/serve/scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/fixed_point.h"
#include "src/common/rng.h"

namespace rnnasip::serve {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFifo: return "fifo";
    case Policy::kBatched: return "batched";
  }
  return "?";
}

Workload make_poisson_workload(const Cluster& cluster, const WorkloadConfig& cfg) {
  RNNASIP_CHECK(!cfg.networks.empty());
  RNNASIP_CHECK(cfg.requests >= 1);
  RNNASIP_CHECK(cfg.mean_interarrival_cycles > 0);
  Workload w;
  w.config = cfg;
  Rng rng(cfg.seed);
  double t = 0;
  for (int i = 0; i < cfg.requests; ++i) {
    Job job;
    job.id = static_cast<uint64_t>(i);
    job.network = cfg.networks[rng.next_below(static_cast<uint32_t>(cfg.networks.size()))];
    // Exponential inter-arrival: -mean * ln(U), U in (0, 1].
    const double u = 1.0 - rng.next_double();
    t += -cfg.mean_interarrival_cycles * std::log(u);
    job.arrival = static_cast<uint64_t>(t);
    const int n = cluster.network(job.network).input_count();
    job.input.resize(static_cast<size_t>(n));
    for (auto& v : job.input) v = static_cast<int16_t>(quantize(rng.next_in(-1.0, 1.0)));
    w.jobs.push_back(std::move(job));
  }
  return w;
}

Scheduler::Scheduler(Cluster* cluster, Policy policy)
    : cluster_(cluster), policy_(policy) {
  RNNASIP_CHECK(cluster != nullptr);
}

ServeResult Scheduler::run(const Workload& workload) {
  ServeResult r;
  r.policy = policy_;
  r.cores = cluster_->cores();
  r.batch = cluster_->config().batch;
  r.core_busy.assign(static_cast<size_t>(r.cores), 0);
  r.completions.resize(workload.jobs.size());

  std::vector<const Job*> pending;
  pending.reserve(workload.jobs.size());
  for (const Job& j : workload.jobs) pending.push_back(&j);

  std::vector<uint64_t> core_free(static_cast<size_t>(r.cores), 0);
  while (!pending.empty()) {
    // The core that frees earliest serves next (ties: lowest index).
    int core = 0;
    for (int c = 1; c < r.cores; ++c) {
      if (core_free[static_cast<size_t>(c)] < core_free[static_cast<size_t>(core)]) core = c;
    }
    const Job& head = *pending.front();
    const uint64_t start = std::max(core_free[static_cast<size_t>(core)], head.arrival);

    // Coalesce: same network, already arrived by `start`, up to B total.
    std::vector<size_t> group{0};
    if (policy_ == Policy::kBatched && cluster_->batchable(head.network)) {
      const int cap = cluster_->config().batch;
      for (size_t i = 1; i < pending.size() && static_cast<int>(group.size()) < cap; ++i) {
        if (pending[i]->network == head.network && pending[i]->arrival <= start) {
          group.push_back(i);
        }
      }
      // The fixed-B program always runs all B lanes. From level d up the
      // batched schedule is the fused per-sample one (see emit_fc_batch), so
      // a lane costs the same as a single run and padded lanes are pure
      // loss: coalesce only full groups there. At levels <= c the 2-D tile
      // amortizes weight loads across lanes, which pays even part-filled.
      if (cluster_->config().level >= kernels::OptLevel::kLoadCompute &&
          static_cast<int>(group.size()) < cap) {
        group.resize(1);
      }
    }

    uint64_t cycles = 0;
    std::vector<std::vector<int16_t>> outputs;
    if (group.size() == 1) {
      auto er = cluster_->run_single(core, head.network, head.input);
      cycles = er.cycles;
      outputs = std::move(er.outputs);
      ++r.single_execs;
    } else {
      std::vector<std::vector<int16_t>> inputs;
      inputs.reserve(group.size());
      for (size_t gi : group) inputs.push_back(pending[gi]->input);
      auto er = cluster_->run_batched(core, head.network, inputs);
      cycles = er.cycles;
      outputs = std::move(er.outputs);
      ++r.batched_execs;
      r.batched_requests += group.size();
      r.padded_slots +=
          static_cast<uint64_t>(cluster_->config().batch) - group.size();
    }

    const uint64_t done = start + cycles;
    for (size_t k = 0; k < group.size(); ++k) {
      const Job& job = *pending[group[k]];
      Completion c;
      c.id = job.id;
      c.network = job.network;
      c.core = core;
      c.group = static_cast<int>(group.size());
      c.arrival = job.arrival;
      c.start = start;
      c.done = done;
      c.wait_cycles = start - job.arrival;
      c.exec_cycles = cycles;
      c.outputs = std::move(outputs[k]);
      RNNASIP_CHECK(job.id < r.completions.size());
      r.completions[job.id] = std::move(c);
    }
    core_free[static_cast<size_t>(core)] = done;
    r.core_busy[static_cast<size_t>(core)] += cycles;
    r.makespan = std::max(r.makespan, done);

    // Remove the group back-to-front so indices stay valid.
    for (size_t k = group.size(); k-- > 0;) {
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(group[k]));
    }
  }
  return r;
}

uint64_t ServeResult::latency_percentile(double p) const {
  RNNASIP_CHECK(!completions.empty());
  std::vector<uint64_t> lat;
  lat.reserve(completions.size());
  for (const Completion& c : completions) lat.push_back(c.latency());
  std::sort(lat.begin(), lat.end());
  const size_t n = lat.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return lat[rank - 1];
}

double ServeResult::throughput_per_s(double mhz) const {
  if (makespan == 0) return 0;
  return static_cast<double>(completions.size()) /
         (static_cast<double>(makespan) / (mhz * 1e6));
}

double ServeResult::utilization(int core) const {
  if (makespan == 0) return 0;
  return static_cast<double>(core_busy[static_cast<size_t>(core)]) /
         static_cast<double>(makespan);
}

double ServeResult::batch_occupancy() const {
  const uint64_t lanes = batched_requests + padded_slots;
  return lanes == 0 ? 1.0
                    : static_cast<double>(batched_requests) / static_cast<double>(lanes);
}

obs::Json serve_result_to_json(const ServeResult& r, double mhz) {
  obs::Json j = obs::Json::object();
  j.set("policy", policy_name(r.policy));
  j.set("cores", r.cores);
  j.set("batch", r.batch);
  j.set("requests", static_cast<uint64_t>(r.completions.size()));
  j.set("makespan_cycles", r.makespan);
  j.set("mhz", mhz);
  j.set("throughput_inf_per_s", r.throughput_per_s(mhz));
  obs::Json lat = obs::Json::object();
  lat.set("p50_cycles", r.latency_percentile(50));
  lat.set("p95_cycles", r.latency_percentile(95));
  lat.set("p99_cycles", r.latency_percentile(99));
  lat.set("p50_us", static_cast<double>(r.latency_percentile(50)) / mhz);
  lat.set("p95_us", static_cast<double>(r.latency_percentile(95)) / mhz);
  lat.set("p99_us", static_cast<double>(r.latency_percentile(99)) / mhz);
  j.set("latency", std::move(lat));
  obs::Json util = obs::Json::array();
  for (int c = 0; c < r.cores; ++c) util.push(r.utilization(c));
  j.set("core_utilization", std::move(util));
  obs::Json batching = obs::Json::object();
  batching.set("single_execs", r.single_execs);
  batching.set("batched_execs", r.batched_execs);
  batching.set("batched_requests", r.batched_requests);
  batching.set("padded_slots", r.padded_slots);
  batching.set("occupancy", r.batch_occupancy());
  j.set("batching", std::move(batching));
  return j;
}

}  // namespace rnnasip::serve
