// Deterministic request scheduler over a serving Cluster.
//
// A Workload is a seeded synthetic request stream: Poisson-like arrivals
// (exponential inter-arrival times from common::Rng), each request naming a
// network and carrying a deterministic input vector. The scheduler drains
// it in event order on N simulated cores whose clocks advance by the real
// measured cycles of each program execution — so latency percentiles,
// throughput and utilization are true cycle-level numbers, not analytic
// estimates.
//
// Policies:
//   kFifo     — next-free core takes the oldest pending request, single
//               program per request.
//   kBatched  — the next-free core scans the pending queue (bounded by what
//               has *arrived* by its start time — no oracle) for up to B
//               requests of the same network and runs them as one batched
//               execution; non-batchable networks and singleton groups fall
//               back to the single program.
//
// Everything is seeded and simulated: two runs with the same configuration
// produce byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/serve/cluster.h"

namespace rnnasip::serve {

/// One synthetic inference request.
struct Job {
  uint64_t id = 0;
  std::string network;
  uint64_t arrival = 0;  ///< cycle the request enters the queue
  std::vector<int16_t> input;
};

struct WorkloadConfig {
  std::vector<std::string> networks;  ///< drawn uniformly per request
  int requests = 128;
  /// Mean cycles between consecutive arrivals (Poisson process rate
  /// 1/mean); smaller = heavier load.
  double mean_interarrival_cycles = 20'000;
  uint64_t seed = 0x5EED;
};

struct Workload {
  WorkloadConfig config;
  std::vector<Job> jobs;  ///< sorted by arrival cycle
};

/// Deterministic Poisson-like request stream; inputs are uniform Q3.12
/// vectors sized per network.
Workload make_poisson_workload(const Cluster& cluster, const WorkloadConfig& cfg);

enum class Policy { kFifo, kBatched };
const char* policy_name(Policy p);

/// One request's fate. The accounting identity
///   done - arrival == wait_cycles + exec_cycles
/// holds exactly: wait = start - arrival, exec = done - start.
struct Completion {
  uint64_t id = 0;
  std::string network;
  int core = 0;
  int group = 1;  ///< coalesced group size this request ran in (1 = single)
  uint64_t arrival = 0;
  uint64_t start = 0;
  uint64_t done = 0;
  uint64_t wait_cycles = 0;
  uint64_t exec_cycles = 0;
  std::vector<int16_t> outputs;
  uint64_t latency() const { return done - arrival; }
};

struct ServeResult {
  Policy policy = Policy::kFifo;
  int cores = 1;
  int batch = 1;
  std::vector<Completion> completions;  ///< ordered by request id
  uint64_t makespan = 0;                ///< cycle the last request finishes
  std::vector<uint64_t> core_busy;      ///< executing cycles per core
  uint64_t batched_execs = 0;           ///< batched program executions
  uint64_t batched_requests = 0;        ///< requests they served
  uint64_t padded_slots = 0;            ///< zero-padded lanes in those
  uint64_t single_execs = 0;

  /// Nearest-rank percentile of request latency, in cycles.
  uint64_t latency_percentile(double p) const;
  /// Inferences per second at a core clock of `mhz`.
  double throughput_per_s(double mhz) const;
  /// Busy fraction of one core over the makespan.
  double utilization(int core) const;
  /// Filled fraction of batched lanes (1.0 = every lane carried a request).
  double batch_occupancy() const;
};

class Scheduler {
 public:
  Scheduler(Cluster* cluster, Policy policy);

  /// Drain the workload; deterministic in (cluster config, workload).
  ServeResult run(const Workload& workload);

 private:
  Cluster* cluster_;
  Policy policy_;
};

/// Deterministic JSON for one serving run (no host time, byte-stable).
/// `mhz` converts cycle metrics to wall-clock ones (the paper's operating
/// point for throughput claims is 500 MHz).
obs::Json serve_result_to_json(const ServeResult& r, double mhz);

}  // namespace rnnasip::serve
