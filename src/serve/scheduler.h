// Deterministic request scheduler over a serving Cluster.
//
// A Workload is a seeded synthetic request stream: Poisson-like arrivals
// (exponential inter-arrival times from common::Rng), each request naming a
// network and carrying a deterministic input vector (and optionally a
// per-request deadline). The scheduler drains it in event order on N
// simulated cores whose clocks advance by the real measured cycles of each
// program execution — so latency percentiles, throughput and utilization
// are true cycle-level numbers, not analytic estimates.
//
// Policies:
//   kFifo     — next-free core takes the oldest pending request, single
//               program per request.
//   kBatched  — the next-free core scans the pending queue (bounded by what
//               has *arrived* by its start time — no oracle) for up to B
//               requests of the same network and runs them as one batched
//               execution; non-batchable networks and singleton groups fall
//               back to the single program.
//   kDeadline — earliest-deadline-first ordering over the arrived queue,
//               with admission control: a request whose queue-time estimate
//               already blows its deadline is rejected up front (counted in
//               ServeResult::rejections, never silently dropped). Single
//               executions only.
//
// Resilience (SchedulerConfig): each execution may run under a seeded SEU
// campaign (fault::FaultSpec; the per-execution seed is mixed from one
// campaign seed, so whole runs are bit-reproducible). A trapped or
// watchdog-killed execution surfaces as ExecFailure; the scheduler
// re-dispatches the request with bounded retries and deterministic backoff
// in cycles, quarantines a core that fails K times in a row for a cooldown
// window, and — under overload (deadline-miss rate or queue depth past a
// threshold) — falls back from the configured optimization level to the
// cluster's cheaper fallback flavor until pressure subsides.
//
// Everything is seeded and simulated: two runs with the same configuration
// produce byte-identical reports, and a configuration with zero fault
// rates and no deadlines behaves bit-identically to the plain scheduler.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/integrity/integrity.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/serve/cluster.h"

namespace rnnasip::serve {

/// One synthetic inference request.
struct Job {
  uint64_t id = 0;
  std::string network;
  uint64_t arrival = 0;   ///< cycle the request enters the queue
  /// Absolute completion deadline in cycles; 0 = no deadline. The per-TTI
  /// RRM setting: a scheduling decision that arrives after its TTI is
  /// worthless.
  uint64_t deadline = 0;
  std::vector<int16_t> input;
};

struct WorkloadConfig {
  std::vector<std::string> networks;  ///< drawn uniformly per request
  int requests = 128;
  /// Mean cycles between consecutive arrivals (Poisson process rate
  /// 1/mean); smaller = heavier load.
  double mean_interarrival_cycles = 20'000;
  /// Mean deadline slack: each job's deadline is arrival + U[0.5, 1.5) x
  /// this many cycles, drawn from a separate derived RNG stream — changing
  /// the slack overlays deadlines on the *same* request stream. 0 (default)
  /// = no deadlines (the PR 3 workload bit-for-bit).
  double deadline_slack_cycles = 0;
  uint64_t seed = 0x5EED;
};

struct Workload {
  WorkloadConfig config;
  std::vector<Job> jobs;  ///< sorted by arrival cycle
};

/// Deterministic Poisson-like request stream; inputs are uniform Q3.12
/// vectors sized per network. requests == 0 yields an empty stream.
Workload make_poisson_workload(const Cluster& cluster, const WorkloadConfig& cfg);

enum class Policy { kFifo, kBatched, kDeadline };
const char* policy_name(Policy p);

/// What cost the kDeadline admission test charges a request against its
/// deadline. kCalibrated uses the measured calibration-run estimate (exact
/// for these input-independent kernels, but carries no proof). kProvable
/// uses the certified static WCET (analysis/wcet.h): an admitted request
/// provably cannot miss its deadline through its own execution time, at
/// the price of rejecting requests whose bound-vs-actual gap straddles the
/// deadline.
enum class Admission { kCalibrated, kProvable };
const char* admission_name(Admission a);

/// Resilience and policy knobs of one scheduling run. The defaults (zero
/// fault rates, no fallback) reproduce the plain scheduler bit-exactly.
struct SchedulerConfig {
  Policy policy = Policy::kFifo;
  /// kDeadline admission-control mode (ignored by other policies).
  Admission admission = Admission::kCalibrated;
  /// Per-execution SEU campaign template. All-zero rates disable
  /// injection entirely. The seed is the *campaign* seed: execution k runs
  /// under splitmix(seed, k), so one seed reproduces the whole run.
  fault::FaultSpec fault;
  /// Re-dispatch attempts after an ExecFailure before the request is
  /// recorded as failed (counted, not silently dropped).
  int max_retries = 3;
  /// Deterministic backoff: attempt n becomes ready n * this many cycles
  /// after the failed execution finished.
  uint64_t retry_backoff_cycles = 4'096;
  /// Quarantine a core after this many *consecutive* failed executions...
  int quarantine_threshold = 3;
  /// ...for this cooldown window (the core rejoins dispatch afterwards).
  uint64_t quarantine_cooldown_cycles = 1'000'000;
  /// Graceful degradation: dispatch at the cluster's fallback_level while
  /// overloaded. Requires ClusterConfig::fallback_level.
  bool level_fallback = false;
  /// Overload enters when the deadline-miss fraction over the last
  /// miss_window completions reaches overload_miss_rate, or (when
  /// overload_queue_depth > 0) the arrived queue exceeds that depth;
  /// it leaves when the miss fraction falls to recover_miss_rate and the
  /// queue drains to half the depth (hysteresis).
  int miss_window = 16;
  double overload_miss_rate = 0.5;
  double recover_miss_rate = 0.125;
  size_t overload_queue_depth = 0;  ///< 0 = queue-depth trigger disabled
  /// Hard cap on retained FaultAttribution records: a heavy SEU campaign
  /// over a million-request run must not grow host memory without bound.
  /// Overflow sets ServeResult::fault_log_truncated; fault_events_total
  /// always counts every flip.
  size_t max_fault_log = 1 << 12;
  /// Keep each Completion's output vector. Defaults on (callers diff
  /// outputs); million-request throughput runs turn it off so retained
  /// completions stay O(bookkeeping) instead of O(outputs).
  bool retain_outputs = true;

  /// Integrity-and-recovery knobs. Any of detect/preemption switches the
  /// scheduler to segmented (layer-boundary) execution over a cluster
  /// built with ClusterConfig::integrity; all-off (the default) keeps the
  /// plain whole-execution path bit-identical to before.
  struct IntegrityOptions {
    /// Verify every layer's ABFT fold against the golden oracle; a
    /// mismatch is an ExecFailure (kIntegrityMismatch) after rollback.
    bool detect = false;
    /// Re-execute a corrupted/trapped layer from its boundary checkpoint
    /// before escalating to the request-level retry ladder.
    bool rollback = true;
    int layer_retries = 2;  ///< rollback budget per boundary
    /// EDF layer-boundary preemption (kDeadline policy only): a ready
    /// request with a strictly earlier deadline suspends the running one
    /// at its next boundary; the victim resumes — on any core —
    /// bit-identically from its checkpoint.
    bool preemption = false;
  };
  IntegrityOptions integrity;

  /// Serving telemetry knobs (the observability layer; see
  /// docs/OBSERVABILITY.md "Serving telemetry"). Recording is passive —
  /// it never feeds back into scheduling decisions — so a run with
  /// telemetry on executes the exact same schedule as with it off.
  struct TelemetryOptions {
    bool enabled = false;
    /// Retain the full span timeline (segments + marks) only for requests
    /// with id % sample_every == 0; span-identity accounting still covers
    /// every request. Raise for million-request runs.
    uint64_t sample_every = 1;
    /// Hard cap on retained timelines (tracks_truncated marks overflow).
    size_t max_tracks = 1 << 14;
  };
  TelemetryOptions telemetry;
};

/// Everything the telemetry layer recorded about one serving run: the
/// request spans (with their enforced identity) and the metrics registry.
/// Attached to ServeResult by shared_ptr so results stay cheaply copyable.
struct ServingTelemetry {
  explicit ServingTelemetry(obs::SpanCollector::Options opt) : spans(opt) {}
  obs::SpanCollector spans;
  obs::MetricsRegistry metrics;
};

/// One request's fate. The accounting identity
///   done - arrival == wait_cycles + exec_cycles
/// holds exactly: exec is the executing cycles of the final, successful
/// execution and wait is everything else (queueing, retry backoff, and —
/// under preemption — the suspended gaps between its segments).
struct Completion {
  uint64_t id = 0;
  std::string network;
  int core = 0;
  int group = 1;  ///< coalesced group size this request ran in (1 = single)
  kernels::OptLevel level = kernels::OptLevel::kInputTiling;  ///< level served at
  int retries = 0;        ///< failed executions before this one succeeded
  int preemptions = 0;    ///< boundary suspensions of the final execution
  uint64_t arrival = 0;
  uint64_t deadline = 0;  ///< 0 = none
  uint64_t start = 0;
  uint64_t done = 0;
  uint64_t wait_cycles = 0;
  uint64_t exec_cycles = 0;
  std::vector<int16_t> outputs;
  uint64_t latency() const { return done - arrival; }
  bool met_deadline() const { return deadline == 0 || done <= deadline; }
};

/// A request rejected by admission control (kDeadline policy): at
/// `decided_at` its estimated completion already exceeded the deadline.
struct Rejection {
  uint64_t id = 0;
  std::string network;
  uint64_t arrival = 0;
  uint64_t deadline = 0;
  uint64_t decided_at = 0;
};

/// A request dropped after exhausting its retry budget.
struct FailedRequest {
  uint64_t id = 0;
  std::string network;
  int attempts = 0;  ///< executions that all failed
  iss::TrapCause last_cause = iss::TrapCause::kNone;
};

/// One core's quarantine window [from, to).
struct QuarantineInterval {
  int core = 0;
  uint64_t from = 0;
  uint64_t to = 0;
};

/// One degraded-mode window [from, to) during which dispatch used the
/// fallback level.
struct FallbackInterval {
  uint64_t from = 0;
  uint64_t to = 0;
};

/// One injected campaign flip, attributed to the (core, request) pair it
/// hit (for batched executions: the group head's request id).
struct FaultAttribution {
  int core = 0;
  uint64_t request = 0;
  fault::FaultEvent event;
};

struct ServeResult {
  Policy policy = Policy::kFifo;
  int cores = 1;
  int batch = 1;
  std::vector<Completion> completions;  ///< served requests, ordered by id
  uint64_t makespan = 0;                ///< cycle the last execution finishes
  std::vector<uint64_t> core_busy;      ///< executing cycles per core
  uint64_t batched_execs = 0;           ///< batched program executions
  uint64_t batched_requests = 0;        ///< requests they served
  uint64_t padded_slots = 0;            ///< zero-padded lanes in those
  uint64_t single_execs = 0;

  // ---- Resilience record ----
  std::vector<Rejection> rejections;        ///< admission-control rejects
  std::vector<FailedRequest> failed;        ///< retry budget exhausted
  std::vector<QuarantineInterval> quarantines;
  std::vector<FallbackInterval> fallback_intervals;
  /// Injected flips, capped at SchedulerConfig::max_fault_log records.
  std::vector<FaultAttribution> fault_log;
  uint64_t fault_events_total = 0;   ///< every injected flip, cap or not
  bool fault_log_truncated = false;  ///< fault_log hit the retention cap
  uint64_t exec_failures = 0;   ///< trapped/watchdog-killed executions
  uint64_t retries = 0;         ///< re-dispatches that were queued
  uint64_t deadline_misses = 0; ///< served, but after their deadline
  uint64_t retry_cycles = 0;      ///< cycles burned by failed executions
  uint64_t quarantine_cycles = 0; ///< core-cycles spent in cooldown
  uint64_t fallback_execs = 0;    ///< executions at the fallback level
  uint64_t fallback_cycles = 0;   ///< cycles of those executions

  // ---- Integrity record (segmented scheduling only; zero otherwise) ----
  uint64_t integrity_checks = 0;      ///< ABFT boundary verifications
  uint64_t integrity_detections = 0;  ///< fold mismatches flagged
  uint64_t rollbacks = 0;             ///< layer re-executions
  uint64_t rollback_cycles = 0;       ///< cycles of discarded segments
  /// Detections that exhausted the layer-rollback budget and escalated to
  /// the request-level retry/quarantine ladder.
  uint64_t integrity_escalations = 0;
  uint64_t preemptions = 0;        ///< boundary suspensions
  uint64_t preempted_cycles = 0;   ///< suspended-gap cycles across requests

  /// Telemetry of this run; null unless SchedulerConfig::telemetry.enabled.
  std::shared_ptr<ServingTelemetry> telemetry;

  uint64_t admitted() const {
    return static_cast<uint64_t>(completions.size() + failed.size());
  }

  /// Nearest-rank percentile of request latency, in cycles (0 when
  /// nothing completed).
  uint64_t latency_percentile(double p) const;
  /// Inferences per second at a core clock of `mhz`.
  double throughput_per_s(double mhz) const;
  /// Deadline-meeting inferences per second at `mhz` (requests without a
  /// deadline count as met) — the resilience bench's headline metric.
  double goodput_per_s(double mhz) const;
  /// Busy fraction of one core over the makespan.
  double utilization(int core) const;
  /// Filled fraction of batched lanes (1.0 = every lane carried a request).
  double batch_occupancy() const;
};

class Scheduler {
 public:
  Scheduler(Cluster* cluster, Policy policy);
  Scheduler(Cluster* cluster, SchedulerConfig config);

  /// Drain the workload; deterministic in (cluster config, scheduler
  /// config, workload).
  ServeResult run(const Workload& workload);

 private:
  /// Whole-execution event loop (the pre-integrity scheduler, bit-exact).
  ServeResult run_plain(const Workload& workload);
  /// Layer-boundary segmented loop: ABFT detection, checkpoint rollback,
  /// and EDF preemption over an integrity cluster.
  ServeResult run_segmented(const Workload& workload);

  Cluster* cluster_;
  SchedulerConfig cfg_;
};

/// Deterministic JSON for one serving run (no host time, byte-stable).
/// `mhz` converts cycle metrics to wall-clock ones (the paper's operating
/// point for throughput claims is 500 MHz). Schema v2: adds a "schema"
/// version field and — when the run carried telemetry — a "telemetry"
/// block (span accounting, metrics snapshot, bounded sampled spans); see
/// docs/SERVING.md for the schema and the v1 -> v2 migration note.
obs::Json serve_result_to_json(const ServeResult& r, double mhz);

/// Multi-track Perfetto trace of one telemetered serving run: one thread
/// track per core (tid 0 = scheduler), request span segments as slices,
/// flow arrows stitching each request across retries/rollbacks/preemption
/// migrations, span marks as instants, plus cluster-level quarantine and
/// fallback intervals. Requires r.telemetry.
obs::Json serving_perfetto_trace(const ServeResult& r);

}  // namespace rnnasip::serve
