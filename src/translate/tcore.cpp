#include "src/translate/tcore.h"

#include <cstring>
#include <sstream>

#include "src/common/bits.h"
#include "src/common/check.h"

namespace rnnasip::translate {

using isa::Instr;
using isa::Opcode;
using iss::RunLimits;
using iss::RunResult;
using iss::Trap;
using iss::TrapCause;
using iss::TrapException;

namespace {

// Packed-SIMD helpers, identical to the ISS's (src/iss/core.cpp keeps its
// copies in an anonymous namespace; the semantics must not drift, and the
// property tests in tests/test_translate.cpp hold the two backends to
// bit-identical outputs over the full program suite).
int32_t sdot_h(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(half_lo(a)) * half_lo(b) +
         static_cast<int32_t>(half_hi(a)) * half_hi(b);
}

uint32_t udot_h(uint32_t a, uint32_t b) {
  return (a & 0xFFFFu) * (b & 0xFFFFu) + (a >> 16) * (b >> 16);
}

int32_t sdot_b(uint32_t a, uint32_t b) {
  int32_t acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += static_cast<int32_t>(static_cast<int8_t>(a >> (8 * i))) *
           static_cast<int32_t>(static_cast<int8_t>(b >> (8 * i)));
  }
  return acc;
}

template <typename Fn>
uint32_t map_h(uint32_t a, uint32_t b, Fn fn) {
  return pack_halves(static_cast<int16_t>(fn(half_lo(a), half_lo(b))),
                     static_cast<int16_t>(fn(half_hi(a), half_hi(b))));
}

template <typename Fn>
uint32_t map_b(uint32_t a, uint32_t b, Fn fn) {
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    const auto la = static_cast<int8_t>(a >> (8 * i));
    const auto lb = static_cast<int8_t>(b >> (8 * i));
    out |= (static_cast<uint32_t>(static_cast<uint8_t>(fn(la, lb)))) << (8 * i);
  }
  return out;
}

[[noreturn]] void throw_mem_trap(TrapCause cause, const char* what, uint32_t addr,
                                 uint32_t n, uint32_t align, bool is_store) {
  std::ostringstream os;
  os << what << ": addr=0x" << std::hex << addr << std::dec << " size=" << n
     << (is_store ? " write" : " read");
  if (cause == TrapCause::kMemMisaligned) os << " align=" << align;
  throw TrapException(cause, addr, os.str());
}

}  // namespace

TranslatedCore::TranslatedCore(iss::Memory* mem, iss::Core::Config cfg)
    : mem_(mem),
      cfg_(cfg),
      tanh_table_(activation::PlaTable::build(cfg.tanh_spec)),
      sig_table_(activation::PlaTable::build(cfg.sig_spec)) {
  RNNASIP_CHECK(mem_ != nullptr);
  RNNASIP_CHECK(cfg.tanh_spec.func == activation::ActFunc::kTanh);
  RNNASIP_CHECK(cfg.sig_spec.func == activation::ActFunc::kSigmoid);
  refresh_memory_view();
}

void TranslatedCore::bind(std::shared_ptr<const TranslatedProgram> prog) {
  RNNASIP_CHECK(prog != nullptr);
  // The image's baked-in costs are only valid under the same timing model.
  const iss::TimingModel& a = prog->timing;
  const iss::TimingModel& b = cfg_.timing;
  RNNASIP_CHECK(a.taken_branch_penalty == b.taken_branch_penalty &&
                a.jump_penalty == b.jump_penalty &&
                a.load_use_stall == b.load_use_stall &&
                a.div_cycles == b.div_cycles &&
                a.spr_conflict_stall == b.spr_conflict_stall &&
                a.mem_wait_states == b.mem_wait_states &&
                a.dual_issue == b.dual_issue);
  prog_ = std::move(prog);
  refresh_memory_view();
}

void TranslatedCore::refresh_memory_view() {
  flat_ = mem_->flat_bytes();
  flat_base_ = mem_->base();
  flat_size_ = mem_->size();
  segs_.clear();
  for (size_t i = 0; i < mem_->segment_count(); ++i) {
    const auto info = mem_->segment_info(i);
    segs_.push_back(SegView{info.base, info.size, mem_->segment_bytes(i),
                            info.read_only});
  }
}

void TranslatedCore::reset(uint32_t pc) {
  x_.fill(0);
  spr_.fill(0);
  loops_.fill(iss::HwLoop{});
  pc_ = pc;
  csr_cycle_ = 0;
  csr_instret_ = 0;
  csr_mscratch_ = 0;
  last_was_load_ = false;
  last_sdotsp_spr_ = -1;
  prev_mem_unpaired_ = false;
  hwl_check_all_ = false;
}

void TranslatedCore::set_reg(int i, uint32_t v) {
  RNNASIP_CHECK(i >= 0 && i < 32);
  if (i != 0) x_[static_cast<size_t>(i)] = v;
}

iss::CoreSnapshot TranslatedCore::snapshot() const {
  iss::CoreSnapshot s;
  s.x = x_;
  s.pc = pc_;
  s.spr = spr_;
  s.loops = loops_;
  s.tanh_table = tanh_table_;
  s.sig_table = sig_table_;
  s.csr_cycle = csr_cycle_;
  s.csr_instret = csr_instret_;
  s.csr_mscratch = csr_mscratch_;
  s.prev_mem_unpaired = prev_mem_unpaired_;
  s.last_was_load = last_was_load_;
  s.last_load_rd = last_load_rd_;
  s.last_load_op = last_load_op_;
  s.last_load_pc = last_load_pc_;
  s.last_sdotsp_spr = last_sdotsp_spr_;
  return s;
}

void TranslatedCore::restore(const iss::CoreSnapshot& s) {
  x_ = s.x;
  pc_ = s.pc;
  spr_ = s.spr;
  loops_ = s.loops;
  tanh_table_ = s.tanh_table;
  sig_table_ = s.sig_table;
  csr_cycle_ = s.csr_cycle;
  csr_instret_ = s.csr_instret;
  csr_mscratch_ = s.csr_mscratch;
  prev_mem_unpaired_ = s.prev_mem_unpaired;
  last_was_load_ = s.last_was_load;
  last_load_rd_ = s.last_load_rd;
  last_load_op_ = s.last_load_op;
  last_load_pc_ = s.last_load_pc;
  last_sdotsp_spr_ = s.last_sdotsp_spr;
  // A restored loop whose end is outside the static end set (a snapshot
  // from some other program) would miss its back-edge under flag-gated
  // checking; fall back to checking every sequential retirement.
  hwl_check_all_ = false;
  for (const auto& loop : loops_) {
    if (loop.count > 0 && prog_ && !prog_->hwl_end_possible(loop.end)) {
      hwl_check_all_ = true;
    }
  }
}

void TranslatedCore::trap(uint32_t pc, TrapCause cause, const std::string& msg) {
  std::ostringstream os;
  os << "trap at pc=0x" << std::hex << pc << ": " << msg;
  throw TrapException(cause, 0, os.str());
}

const uint8_t* TranslatedCore::mem_ptr(uint32_t addr, uint32_t n, uint32_t align,
                                       bool is_store) const {
  // Same rules and trap causes as iss::Memory::resolve — segments shadow the
  // flat storage, an access must fit one segment entirely, and read-only
  // segments reject stores.
  for (const SegView& seg : segs_) {
    if (addr >= seg.base && addr - seg.base < seg.size) {
      if (addr - seg.base + n > seg.size) {
        throw_mem_trap(TrapCause::kMemOutOfRange, "access straddles shared segment",
                       addr, n, align, is_store);
      }
      if ((addr & (align - 1)) != 0) {
        throw_mem_trap(TrapCause::kMemMisaligned, "misaligned access", addr, n,
                       align, is_store);
      }
      if (is_store && seg.read_only) {
        throw_mem_trap(TrapCause::kMemWriteProtected,
                       "store into read-only shared segment", addr, n, align,
                       is_store);
      }
      return seg.data + (addr - seg.base);
    }
  }
  if (!(addr >= flat_base_ && addr - flat_base_ + n <= flat_size_)) {
    throw_mem_trap(TrapCause::kMemOutOfRange, "memory access out of range", addr, n,
                   align, is_store);
  }
  if ((addr & (align - 1)) != 0) {
    throw_mem_trap(TrapCause::kMemMisaligned, "misaligned access", addr, n, align,
                   is_store);
  }
  return flat_ + (addr - flat_base_);
}

uint8_t TranslatedCore::load8(uint32_t addr) const {
  return *mem_ptr(addr, 1, 1, false);
}

uint16_t TranslatedCore::load16(uint32_t addr) const {
  uint16_t v;
  std::memcpy(&v, mem_ptr(addr, 2, 2, false), 2);
  return v;
}

uint32_t TranslatedCore::load32(uint32_t addr) const {
  uint32_t v;
  std::memcpy(&v, mem_ptr(addr, 4, 4, false), 4);
  return v;
}

void TranslatedCore::store8(uint32_t addr, uint8_t v) {
  *mem_ptr_mut(addr, 1, 1, true) = v;
}

void TranslatedCore::store16(uint32_t addr, uint16_t v) {
  std::memcpy(mem_ptr_mut(addr, 2, 2, true), &v, 2);
}

void TranslatedCore::store32(uint32_t addr, uint32_t v) {
  std::memcpy(mem_ptr_mut(addr, 4, 4, true), &v, 4);
}

// Architectural effects + cycle cost of one op, mirroring iss::Core::execute
// case for case. Costs come pre-resolved from the translator (base_cost /
// taken_extra); everything else is the same semantics text.
TranslatedCore::StepOut TranslatedCore::step(const TOp& top, uint32_t pc) {
  const Instr& in = top.in;
  uint32_t next = pc + in.size;
  uint64_t cost = top.base_cost;
  const uint32_t a = x_[in.rs1];
  const uint32_t b = x_[in.rs2];
  const int32_t sa = static_cast<int32_t>(a);
  const int32_t sb = static_cast<int32_t>(b);
  const auto write_reg = [this](uint8_t rd, uint32_t v) {
    if (rd != 0) x_[rd] = v;
  };

  switch (in.op) {
    // ----- RV32I -----
    case Opcode::kLui: write_reg(in.rd, static_cast<uint32_t>(in.imm) << 12); break;
    case Opcode::kAuipc: write_reg(in.rd, pc + (static_cast<uint32_t>(in.imm) << 12)); break;
    case Opcode::kJal:
      write_reg(in.rd, pc + in.size);
      next = pc + static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kJalr:
      write_reg(in.rd, pc + in.size);
      next = (a + static_cast<uint32_t>(in.imm)) & ~1u;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      bool taken = false;
      switch (in.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt: taken = sa < sb; break;
        case Opcode::kBge: taken = sa >= sb; break;
        case Opcode::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      if (taken) {
        next = pc + static_cast<uint32_t>(in.imm);
        cost += top.taken_extra;
      }
      break;
    }
    case Opcode::kLb: write_reg(in.rd, static_cast<uint32_t>(static_cast<int8_t>(load8(a + in.imm)))); break;
    case Opcode::kLh: write_reg(in.rd, static_cast<uint32_t>(static_cast<int16_t>(load16(a + in.imm)))); break;
    case Opcode::kLw: write_reg(in.rd, load32(a + in.imm)); break;
    case Opcode::kLbu: write_reg(in.rd, load8(a + in.imm)); break;
    case Opcode::kLhu: write_reg(in.rd, load16(a + in.imm)); break;
    case Opcode::kSb: store8(a + in.imm, static_cast<uint8_t>(b)); break;
    case Opcode::kSh: store16(a + in.imm, static_cast<uint16_t>(b)); break;
    case Opcode::kSw: store32(a + in.imm, b); break;
    case Opcode::kAddi: write_reg(in.rd, a + static_cast<uint32_t>(in.imm)); break;
    case Opcode::kSlti: write_reg(in.rd, sa < in.imm ? 1 : 0); break;
    case Opcode::kSltiu: write_reg(in.rd, a < static_cast<uint32_t>(in.imm) ? 1 : 0); break;
    case Opcode::kXori: write_reg(in.rd, a ^ static_cast<uint32_t>(in.imm)); break;
    case Opcode::kOri: write_reg(in.rd, a | static_cast<uint32_t>(in.imm)); break;
    case Opcode::kAndi: write_reg(in.rd, a & static_cast<uint32_t>(in.imm)); break;
    case Opcode::kSlli: write_reg(in.rd, a << (in.imm & 31)); break;
    case Opcode::kSrli: write_reg(in.rd, a >> (in.imm & 31)); break;
    case Opcode::kSrai: write_reg(in.rd, static_cast<uint32_t>(sa >> (in.imm & 31))); break;
    case Opcode::kAdd: write_reg(in.rd, a + b); break;
    case Opcode::kSub: write_reg(in.rd, a - b); break;
    case Opcode::kSll: write_reg(in.rd, a << (b & 31)); break;
    case Opcode::kSlt: write_reg(in.rd, sa < sb ? 1 : 0); break;
    case Opcode::kSltu: write_reg(in.rd, a < b ? 1 : 0); break;
    case Opcode::kXor: write_reg(in.rd, a ^ b); break;
    case Opcode::kSrl: write_reg(in.rd, a >> (b & 31)); break;
    case Opcode::kSra: write_reg(in.rd, static_cast<uint32_t>(sa >> (b & 31))); break;
    case Opcode::kOr: write_reg(in.rd, a | b); break;
    case Opcode::kAnd: write_reg(in.rd, a & b); break;
    case Opcode::kFence: break;  // single hart, strongly ordered: no-op
    case Opcode::kEcall:
    case Opcode::kEbreak:
      break;  // handled by the run loop
    // ----- Zicsr (counters + mscratch) -----
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc: {
      const uint32_t csr = static_cast<uint32_t>(in.imm);
      uint32_t old;
      bool writable = false;
      switch (csr) {
        case 0xC00: old = static_cast<uint32_t>(csr_cycle_); break;        // cycle
        case 0xC80: old = static_cast<uint32_t>(csr_cycle_ >> 32); break;  // cycleh
        case 0xC02: old = static_cast<uint32_t>(csr_instret_); break;      // instret
        case 0xC82: old = static_cast<uint32_t>(csr_instret_ >> 32); break;
        case 0xF14: old = 0; break;  // mhartid
        case 0x340:                  // mscratch
          old = csr_mscratch_;
          writable = true;
          break;
        default:
          trap(pc, TrapCause::kCsrUnimplemented, "unimplemented CSR");
      }
      const bool wants_write = in.op == Opcode::kCsrrw || in.rs1 != 0;
      if (wants_write) {
        if (!writable) trap(pc, TrapCause::kCsrReadOnly, "write to read-only CSR");
        switch (in.op) {
          case Opcode::kCsrrw: csr_mscratch_ = a; break;
          case Opcode::kCsrrs: csr_mscratch_ = old | a; break;
          default: csr_mscratch_ = old & ~a; break;
        }
      }
      write_reg(in.rd, old);
      break;
    }
    // ----- RV32M -----
    case Opcode::kMul: write_reg(in.rd, a * b); break;
    case Opcode::kMulh:
      write_reg(in.rd, static_cast<uint32_t>((static_cast<int64_t>(sa) * sb) >> 32));
      break;
    case Opcode::kMulhsu:
      write_reg(in.rd, static_cast<uint32_t>((static_cast<int64_t>(sa) * static_cast<uint64_t>(b)) >> 32));
      break;
    case Opcode::kMulhu:
      write_reg(in.rd, static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32));
      break;
    case Opcode::kDiv:
      if (sb == 0) write_reg(in.rd, 0xFFFFFFFFu);
      else if (sa == INT32_MIN && sb == -1) write_reg(in.rd, static_cast<uint32_t>(INT32_MIN));
      else write_reg(in.rd, static_cast<uint32_t>(sa / sb));
      break;
    case Opcode::kDivu:
      write_reg(in.rd, b == 0 ? 0xFFFFFFFFu : a / b);
      break;
    case Opcode::kRem:
      if (sb == 0) write_reg(in.rd, a);
      else if (sa == INT32_MIN && sb == -1) write_reg(in.rd, 0);
      else write_reg(in.rd, static_cast<uint32_t>(sa % sb));
      break;
    case Opcode::kRemu:
      write_reg(in.rd, b == 0 ? a : a % b);
      break;
    // ----- Xpulp post-increment load/store -----
    case Opcode::kPLb:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int8_t>(load8(a))));
      break;
    case Opcode::kPLh:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int16_t>(load16(a))));
      break;
    case Opcode::kPLw:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, load32(a));
      break;
    case Opcode::kPLbu:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, load8(a));
      break;
    case Opcode::kPLhu:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, load16(a));
      break;
    case Opcode::kPLwRr:
      write_reg(in.rs1, a + b);
      write_reg(in.rd, load32(a));
      break;
    case Opcode::kPLhRr:
      write_reg(in.rs1, a + b);
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int16_t>(load16(a))));
      break;
    case Opcode::kPSb:
      store8(a, static_cast<uint8_t>(b));
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      break;
    case Opcode::kPSh:
      store16(a, static_cast<uint16_t>(b));
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      break;
    case Opcode::kPSw:
      store32(a, b);
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      break;
    // ----- Xpulp scalar ALU -----
    case Opcode::kPAbs: write_reg(in.rd, sa < 0 ? static_cast<uint32_t>(-sa) : a); break;
    case Opcode::kPExths: write_reg(in.rd, static_cast<uint32_t>(static_cast<int32_t>(half_lo(a)))); break;
    case Opcode::kPExthz: write_reg(in.rd, a & 0xFFFFu); break;
    case Opcode::kPExtbs: write_reg(in.rd, static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(a)))); break;
    case Opcode::kPExtbz: write_reg(in.rd, a & 0xFFu); break;
    case Opcode::kPMin: write_reg(in.rd, static_cast<uint32_t>(sa < sb ? sa : sb)); break;
    case Opcode::kPMinu: write_reg(in.rd, a < b ? a : b); break;
    case Opcode::kPMax: write_reg(in.rd, static_cast<uint32_t>(sa > sb ? sa : sb)); break;
    case Opcode::kPMaxu: write_reg(in.rd, a > b ? a : b); break;
    case Opcode::kPMac: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sa * sb)); break;
    case Opcode::kPMsu: write_reg(in.rd, x_[in.rd] - static_cast<uint32_t>(sa * sb)); break;
    case Opcode::kPClip: write_reg(in.rd, static_cast<uint32_t>(clip_signed(sa, static_cast<unsigned>(in.imm)))); break;
    case Opcode::kPClipu: {
      const int32_t hi = (1 << (in.imm - 1)) - 1;
      write_reg(in.rd, static_cast<uint32_t>(sa < 0 ? 0 : (sa > hi ? hi : sa)));
      break;
    }
    // ----- Xpulp hardware loops -----
    case Opcode::kLpStarti: loops_[in.rd].start = pc + static_cast<uint32_t>(in.imm); break;
    case Opcode::kLpEndi: loops_[in.rd].end = pc + static_cast<uint32_t>(in.imm); break;
    case Opcode::kLpCount: loops_[in.rd].count = a; break;
    case Opcode::kLpCounti: loops_[in.rd].count = static_cast<uint32_t>(in.imm); break;
    case Opcode::kLpSetup:
      loops_[in.rd].start = pc + 4;
      loops_[in.rd].end = pc + static_cast<uint32_t>(in.imm);
      loops_[in.rd].count = a;
      break;
    case Opcode::kLpSetupi:
      loops_[in.rd].start = pc + 4;
      loops_[in.rd].end = pc + static_cast<uint32_t>(in.imm2);
      loops_[in.rd].count = static_cast<uint32_t>(in.imm);
      break;
    // ----- Xpulp packed SIMD (.h) -----
    case Opcode::kPvAddH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x + y; })); break;
    case Opcode::kPvSubH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x - y; })); break;
    case Opcode::kPvAvgH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return (x + y) >> 1; })); break;
    case Opcode::kPvMinH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x < y ? x : y; })); break;
    case Opcode::kPvMaxH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x > y ? x : y; })); break;
    case Opcode::kPvSrlH:
      write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) {
                  return static_cast<int32_t>((static_cast<uint16_t>(x)) >> (y & 15));
                }));
      break;
    case Opcode::kPvSraH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x >> (y & 15); })); break;
    case Opcode::kPvSllH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x << (y & 15); })); break;
    case Opcode::kPvAbsH: write_reg(in.rd, map_h(a, a, [](int32_t x, int32_t) { return x < 0 ? -x : x; })); break;
    case Opcode::kPvPackH:
      write_reg(in.rd, pack_halves(half_lo(b), half_lo(a)));
      break;
    case Opcode::kPvExtractH:
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int32_t>(
                           in.imm == 0 ? half_lo(a) : half_hi(a))));
      break;
    case Opcode::kPvInsertH: {
      const uint32_t old = x_[in.rd];
      write_reg(in.rd, in.imm == 0 ? pack_halves(half_lo(a), half_hi(old))
                                   : pack_halves(half_lo(old), half_lo(a)));
      break;
    }
    case Opcode::kPvDotupH: write_reg(in.rd, udot_h(a, b)); break;
    case Opcode::kPvDotspH: write_reg(in.rd, static_cast<uint32_t>(sdot_h(a, b))); break;
    case Opcode::kPvSdotupH: write_reg(in.rd, x_[in.rd] + udot_h(a, b)); break;
    case Opcode::kPvSdotspH: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_h(a, b))); break;
    // ----- Xpulp packed SIMD, scalar replication (.sc.h) -----
    case Opcode::kPvAddScH:
    case Opcode::kPvSubScH:
    case Opcode::kPvMinScH:
    case Opcode::kPvMaxScH:
    case Opcode::kPvSraScH:
    case Opcode::kPvDotspScH:
    case Opcode::kPvSdotspScH: {
      const uint32_t rep = pack_halves(half_lo(b), half_lo(b));
      switch (in.op) {
        case Opcode::kPvAddScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x + y; })); break;
        case Opcode::kPvSubScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x - y; })); break;
        case Opcode::kPvMinScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x < y ? x : y; })); break;
        case Opcode::kPvMaxScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x > y ? x : y; })); break;
        case Opcode::kPvSraScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x >> (y & 15); })); break;
        case Opcode::kPvDotspScH: write_reg(in.rd, static_cast<uint32_t>(sdot_h(a, rep))); break;
        default: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_h(a, rep))); break;
      }
      break;
    }
    // ----- Xpulp packed SIMD (.b) -----
    case Opcode::kPvAddB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x + y; })); break;
    case Opcode::kPvSubB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x - y; })); break;
    case Opcode::kPvMinB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x < y ? x : y; })); break;
    case Opcode::kPvMaxB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x > y ? x : y; })); break;
    case Opcode::kPvDotspB: write_reg(in.rd, static_cast<uint32_t>(sdot_b(a, b))); break;
    case Opcode::kPvSdotspB: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_b(a, b))); break;
    // ----- RNN extensions -----
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1: {
      const size_t k = (in.op == Opcode::kPlSdotspH0) ? 0 : 1;
      if (in.rd == in.rs1)
        trap(pc, TrapCause::kRdRs1Conflict,
             "pl.sdotsp.h: rd must differ from the address register");
      const uint32_t old_spr = spr_[k];
      spr_[k] = load32(a);             // LSU path: load next weight word
      write_reg(in.rs1, a + 4);        // post-increment the weight pointer
      write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_h(old_spr, b)));
      break;
    }
    case Opcode::kPlTanh:
      write_reg(in.rd, static_cast<uint32_t>(tanh_table_.eval_raw(sa)));
      break;
    case Opcode::kPlSig:
      write_reg(in.rd, static_cast<uint32_t>(sig_table_.eval_raw(sa)));
      break;
    case Opcode::kInvalid:
    case Opcode::kCount_:
      trap(pc, TrapCause::kIllegalInstruction, "invalid opcode");
  }
  return {next, cost};
}

// Flattening the loop inlines step() (and the memory helpers under it) into
// the dispatch, eliminating the per-retirement call and letting the hot
// architectural state live in registers across the op body — measured ~1.4x
// host throughput on the LSTM suite.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((flatten))
#endif
RunResult TranslatedCore::run(const RunLimits& limits) {
  RunResult res;
  res.exit = RunResult::Exit::kMaxInstrs;
  const iss::TimingModel& t = cfg_.timing;
  const TranslatedProgram* prog = prog_.get();
  const uint64_t max_instrs = limits.max_instrs != 0 ? limits.max_instrs : ~0ull;
  const uint64_t max_cycles = limits.max_cycles != 0 ? limits.max_cycles : ~0ull;

  // Hot architectural state lives in locals for the duration of the loop:
  // every memory store goes through byte pointers (which alias *this*), so
  // member-resident counters would be reloaded and spilled around each
  // step(). The entry-relative CSR sync below keeps the architectural
  // counters exact on every exit path (including CSR reads mid-run).
  uint32_t pc = pc_;
  uint64_t cycles = 0;
  uint64_t instrs = 0;
  const uint64_t csr_cycle_entry = csr_cycle_;
  const uint64_t csr_instret_entry = csr_instret_;
  bool last_load = last_was_load_;
  uint8_t last_rd = last_load_rd_;
  isa::Opcode last_op = last_load_op_;
  uint32_t last_pc = last_load_pc_;
  int last_spr = last_sdotsp_spr_;
  bool prev_unpaired = prev_mem_unpaired_;
  const auto sync = [&] {
    pc_ = pc;
    csr_cycle_ = csr_cycle_entry + cycles;
    csr_instret_ = csr_instret_entry + instrs;
    last_was_load_ = last_load;
    last_load_rd_ = last_rd;
    last_load_op_ = last_op;
    last_load_pc_ = last_pc;
    last_sdotsp_spr_ = last_spr;
    prev_mem_unpaired_ = prev_unpaired;
  };

  try {
    for (uint64_t n = 0; n < max_instrs; ++n) {
      if (cycles >= max_cycles) {
        sync();
        std::ostringstream os;
        os << "cycle watchdog expired after " << cycles << " cycles";
        res.exit = RunResult::Exit::kWatchdog;
        res.trap = Trap{TrapCause::kWatchdog, pc, 0, os.str()};
        res.trap_message = res.trap.message;
        res.cycles = cycles;
        res.instrs = instrs;
        res.pc = pc;
        return res;
      }

      // "Fetch": the translated image is total over the verified text; a pc
      // outside it means control flow escaped the program (which the
      // verifier rules out for translated runs) and is a structured trap,
      // not UB.
      if (prog == nullptr || pc < prog->base || pc >= prog->end ||
          ((pc - prog->base) & 0x3) != 0) {
        sync();
        std::ostringstream os;
        os << "pc=0x" << std::hex << pc << std::dec
           << " outside the translated text";
        res.exit = RunResult::Exit::kTrap;
        res.trap = Trap{TrapCause::kIllegalInstruction, pc, 0, os.str()};
        res.trap_message = res.trap.message;
        res.cycles = cycles;
        res.instrs = instrs;
        res.pc = pc;
        return res;
      }
      const TOp& top = prog->code[(pc - prog->base) >> 2];

      // Load-use interlock, charged exactly as the ISS charges it.
      const bool load_use = last_load && ((top.reads_mask >> last_rd) & 1u) != 0;
      if (load_use) cycles += t.load_use_stall;

      if (top.flags & (kFlagYield | kFlagCsr)) {
        if (top.flags & kFlagYield) {
          // The yield instruction's own cycle is charged to the result but
          // not the CSRs (the ISS returns before its CSR bookkeeping).
          sync();
          res.cycles = cycles + 1;
          res.instrs = instrs + 1;
          res.pc = pc;
          res.exit = top.in.op == Opcode::kEbreak ? RunResult::Exit::kEbreak
                                                  : RunResult::Exit::kEcall;
          return res;
        }
        // CSR access reads the live counters: sync before executing.
        csr_cycle_ = csr_cycle_entry + cycles;
        csr_instret_ = csr_instret_entry + instrs;
      }

      uint64_t extra = 0;
      if (top.spr >= 0 && top.spr == last_spr) {
        extra = t.spr_conflict_stall;
      }

      const bool paired = t.dual_issue && prev_unpaired &&
                          (top.flags & kFlagPairable) != 0 && !load_use;

      const StepOut out = step(top, pc);
      uint64_t cost = out.cost + extra;
      if (paired && cost >= 1) cost -= 1;
      prev_unpaired = !paired && (top.flags & kFlagMemUnit) != 0;
      cycles += cost;
      instrs += 1;

      last_load = (top.flags & kFlagGprLoad) != 0;
      if (last_load) {
        last_rd = top.in.rd;
        last_op = top.in.op;
        last_pc = pc;
      }
      last_spr = top.spr;

      // Hardware-loop back-edge: only on sequential flow, and only at
      // statically flagged slots (the end set is fully enumerable at
      // translate time) unless a foreign snapshot forced full checking.
      uint32_t next = out.next_pc;
      if (((top.flags & kFlagHwlCand) != 0 || hwl_check_all_) &&
          next == pc + top.in.size) {
        for (size_t l = 0; l < 2; ++l) {
          iss::HwLoop& loop = loops_[l];
          if (loop.count > 0 && next == loop.end) {
            if (loop.count > 1) {
              --loop.count;
              next = loop.start;
              break;  // inner loop takes priority; outer sees its own end later
            }
            loop.count = 0;  // final iteration: fall through, loop retires
          }
        }
      }
      pc = next;
    }
  } catch (const TrapException& e) {
    // pc was not advanced: it still names the instruction that trapped.
    sync();
    res.exit = RunResult::Exit::kTrap;
    res.trap = Trap{e.cause(), pc, e.addr(), e.what()};
    res.trap_message = e.what();
    res.cycles = cycles;
    res.instrs = instrs;
    res.pc = pc;
    return res;
  } catch (const std::runtime_error& e) {
    sync();
    res.exit = RunResult::Exit::kTrap;
    res.trap = Trap{TrapCause::kOther, pc, 0, e.what()};
    res.trap_message = e.what();
    res.cycles = cycles;
    res.instrs = instrs;
    res.pc = pc;
    return res;
  }
  sync();
  res.cycles = cycles;
  res.instrs = instrs;
  res.pc = pc;
  return res;
}

}  // namespace rnnasip::translate
