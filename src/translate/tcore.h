// TranslatedCore — executes a TranslatedProgram at host speed.
//
// Holds the complete architectural state of one extended-RI5CY core (the
// same state iss::CoreSnapshot captures: GPRs, PC, SPR weight registers,
// hardware loops, PLA tables, Zicntr CSRs, and the hazard-tracking pipeline
// bits), and retires pre-decoded ops with a single jump-table dispatch per
// instruction. Memory accesses go through raw host pointers captured from
// the bound iss::Memory at bind() time, with the ISS's segment-shadowing,
// bounds, alignment, and write-protection rules inlined — so a buggy or
// hostile address still raises the same structured trap the ISS would.
//
// Cycle attribution is not approximated: the per-op costs baked in by the
// translator plus the same runtime hazard rules the ISS applies (load-use
// interlock, SPR conflict, taken-branch penalty, dual-issue pairing,
// hardware-loop back-edges) reproduce the ISS cycle stream bit-exactly.
// What the translated backend does NOT provide: per-opcode ExecStats, the
// trace/stall/fault hooks, and decode of self-modified text — the callers
// that need those (observability, fault campaigns) stay on the ISS.
#pragma once

#include <memory>

#include "src/exec/backend.h"
#include "src/iss/memory.h"
#include "src/translate/translate.h"

namespace rnnasip::translate {

class TranslatedCore final : public exec::ExecutionBackend {
 public:
  explicit TranslatedCore(iss::Memory* mem) : TranslatedCore(mem, {}) {}
  TranslatedCore(iss::Memory* mem, iss::Core::Config cfg);

  /// Attach a translated image and (re)capture the raw memory view. The
  /// image must have been translated under this core's timing model.
  void bind(std::shared_ptr<const TranslatedProgram> prog);
  const TranslatedProgram* program() const { return prog_.get(); }

  /// Re-capture raw pointers from the Memory (segments were remapped or the
  /// backing vectors reallocated since bind()).
  void refresh_memory_view();

  // --- exec::ExecutionBackend ---
  ExecBackend kind() const override { return ExecBackend::kTranslated; }
  void reset(uint32_t pc) override;
  void set_pc(uint32_t pc) override { pc_ = pc; }
  uint32_t pc() const override { return pc_; }
  iss::RunResult run(const iss::RunLimits& limits) override;
  iss::CoreSnapshot snapshot() const override;
  void restore(const iss::CoreSnapshot& s) override;

  // State accessors (same surface tests use on iss::Core).
  uint32_t reg(int i) const { return x_[static_cast<size_t>(i)]; }
  void set_reg(int i, uint32_t v);
  uint32_t spr(int i) const { return spr_[static_cast<size_t>(i)]; }
  const iss::HwLoop& hw_loop(int i) const { return loops_[static_cast<size_t>(i)]; }

 private:
  /// Raw host window of one mapped shared segment.
  struct SegView {
    uint32_t base = 0;
    uint32_t size = 0;
    uint8_t* data = nullptr;
    bool read_only = false;
  };

  const uint8_t* mem_ptr(uint32_t addr, uint32_t n, uint32_t align,
                         bool is_store) const;
  uint8_t* mem_ptr_mut(uint32_t addr, uint32_t n, uint32_t align, bool is_store) {
    return const_cast<uint8_t*>(mem_ptr(addr, n, align, is_store));
  }
  uint8_t load8(uint32_t addr) const;
  uint16_t load16(uint32_t addr) const;
  uint32_t load32(uint32_t addr) const;
  void store8(uint32_t addr, uint8_t v);
  void store16(uint32_t addr, uint16_t v);
  void store32(uint32_t addr, uint32_t v);

  /// Retire the op at pc_ (slot `top`): architectural effects + full cycle
  /// cost including data-dependent penalties, excluding inter-instruction
  /// stalls (handled by run()). Returns {next_pc, cost}.
  struct StepOut {
    uint32_t next_pc;
    uint64_t cost;
  };
  StepOut step(const TOp& top, uint32_t pc);

  [[noreturn]] void trap(uint32_t pc, iss::TrapCause cause, const std::string& msg);

  iss::Memory* mem_;
  iss::Core::Config cfg_;
  std::shared_ptr<const TranslatedProgram> prog_;

  // Raw memory view (captured by bind()/refresh_memory_view()).
  uint8_t* flat_ = nullptr;
  uint32_t flat_base_ = 0;
  uint32_t flat_size_ = 0;
  std::vector<SegView> segs_;

  // Architectural state — field-for-field the iss::CoreSnapshot contents.
  std::array<uint32_t, 32> x_{};
  uint32_t pc_ = 0;
  std::array<uint32_t, 2> spr_{};
  std::array<iss::HwLoop, 2> loops_{};
  activation::PlaTable tanh_table_;
  activation::PlaTable sig_table_;
  uint64_t csr_cycle_ = 0;
  uint64_t csr_instret_ = 0;
  uint32_t csr_mscratch_ = 0;
  bool prev_mem_unpaired_ = false;
  bool last_was_load_ = false;
  uint8_t last_load_rd_ = 0;
  isa::Opcode last_load_op_ = isa::Opcode::kInvalid;
  uint32_t last_load_pc_ = 0;
  int last_sdotsp_spr_ = -1;

  /// restore() can inject loop state whose end address is outside the
  /// program's static end set (a snapshot from a different program). Flip
  /// to checking every sequential retirement so back-edges are never missed.
  bool hwl_check_all_ = false;
};

}  // namespace rnnasip::translate
