#include "src/translate/translate.h"

#include <algorithm>
#include <sstream>

#include "src/analysis/verify.h"
#include "src/isa/instr_info.h"

namespace rnnasip::translate {

using isa::Instr;
using isa::Opcode;
using isa::Unit;

namespace {

bool is_xpulp(Opcode op) {
  return op >= Opcode::kPLb && op <= Opcode::kPvSdotspB;
}

bool is_rnn_ext(Opcode op) {
  return op >= Opcode::kPlSdotspH0 && op <= Opcode::kPlSig;
}

TranslateResult refuse(std::string code, std::string message) {
  TranslateResult res;
  res.error.code = std::move(code);
  res.error.message = std::move(message);
  return res;
}

}  // namespace

bool TranslatedProgram::hwl_end_possible(uint32_t addr) const {
  return std::binary_search(hwl_ends.begin(), hwl_ends.end(), addr);
}

TranslateResult translate(const assembler::Program& prog,
                          const iss::MemoryMap& map,
                          const iss::Core::Config& cfg) {
  if (prog.instrs.empty()) return refuse("bad-text", "empty program");
  if ((prog.base & 0x3) != 0) {
    return refuse("bad-text", "program base is not 4-byte aligned");
  }
  for (size_t i = 0; i < prog.instrs.size(); ++i) {
    if (prog.instrs[i].size != 4) {
      std::ostringstream os;
      os << "instruction " << i << " has size " << int(prog.instrs[i].size)
         << "; the translator requires uniform 4-byte text";
      return refuse("bad-text", os.str());
    }
  }

  // ISA gates are resolved ahead of time: the ISS traps on a gated-off
  // instruction at runtime, so a gated program must never reach the
  // translated fast path at all.
  for (size_t i = 0; i < prog.instrs.size(); ++i) {
    const Opcode op = prog.instrs[i].op;
    if ((!cfg.has_xpulp && is_xpulp(op)) || (!cfg.has_rnn_ext && is_rnn_ext(op))) {
      std::ostringstream os;
      os << "pc=0x" << std::hex << prog.address_of(i) << std::dec << " "
         << isa::mnemonic(op) << ": instruction set gated off in core config";
      return refuse("isa-gated", os.str());
    }
  }

  // Precondition: the static verifier must admit the program. Errors are
  // structural soundness violations (bad CFG targets, illegal hw-loop
  // shapes, out-of-map accesses) — exactly the guarantees the lowering
  // depends on — so any error refuses translation. Warnings/infos are
  // advisory and do not block (the lint CI gate holds them to zero for the
  // production suite anyway).
  analysis::Options vopts;
  vopts.timing = cfg.timing;
  vopts.dead_defs = false;  // liveness advisories are irrelevant here
  const analysis::Report report = analysis::verify(prog, map, vopts);
  if (report.errors() > 0) {
    std::ostringstream os;
    os << report.errors() << " verifier error(s); first: ";
    for (const auto& f : report.findings) {
      if (f.severity == analysis::Severity::kError) {
        os << f.rule << " at pc=0x" << std::hex << f.pc << std::dec << ": "
           << f.message;
        break;
      }
    }
    return refuse("verify-failed", os.str());
  }

  auto tp = std::make_shared<TranslatedProgram>();
  tp->base = prog.base;
  tp->end = prog.end_address();
  tp->timing = cfg.timing;
  tp->static_min_cycles = report.min_cycles;
  tp->static_max_cycles = report.max_cycles;
  tp->num_instrs = report.num_instrs;
  tp->num_blocks = report.num_blocks;
  tp->num_hw_loops = report.num_hw_loops;
  tp->code.resize(prog.instrs.size());

  // Static hardware-loop end set: every instruction that can set a loop end
  // computes it as `pc + static offset`, so the full set of runtime end
  // values is enumerable ahead of time.
  for (size_t i = 0; i < prog.instrs.size(); ++i) {
    const Instr& in = prog.instrs[i];
    const uint32_t pc = prog.address_of(i);
    switch (in.op) {
      case Opcode::kLpSetup:
      case Opcode::kLpEndi:
        tp->hwl_ends.push_back(pc + static_cast<uint32_t>(in.imm));
        break;
      case Opcode::kLpSetupi:
        tp->hwl_ends.push_back(pc + static_cast<uint32_t>(in.imm2));
        break;
      default:
        break;
    }
  }
  std::sort(tp->hwl_ends.begin(), tp->hwl_ends.end());
  tp->hwl_ends.erase(std::unique(tp->hwl_ends.begin(), tp->hwl_ends.end()),
                     tp->hwl_ends.end());

  const iss::TimingModel& t = cfg.timing;
  for (size_t i = 0; i < prog.instrs.size(); ++i) {
    TOp& op = tp->code[i];
    op.in = prog.instrs[i];
    const Instr& in = op.in;
    const uint32_t pc = prog.address_of(i);
    const Unit unit = isa::opcode_info(in.op).unit;

    for (uint8_t r = 1; r < 32; ++r) {
      if (isa::reads_reg(in, r)) op.reads_mask |= 1u << r;
    }

    // Full cycle cost under `t`, mirroring iss::Core: divider cost replaces
    // the issue cycle; jump and memory wait-state penalties are
    // unconditional; the taken-branch penalty is the only data-dependent
    // term and stays separate.
    uint64_t cost = 1;
    if (unit == Unit::kDiv) cost = t.div_cycles > 0 ? t.div_cycles : 1;
    if (unit == Unit::kJump) cost += t.jump_penalty;
    if (unit == Unit::kLoad || unit == Unit::kStore || unit == Unit::kRnnDot) {
      cost += t.mem_wait_states;
    }
    op.base_cost = static_cast<uint16_t>(cost);
    op.taken_extra =
        unit == Unit::kBranch ? static_cast<uint16_t>(t.taken_branch_penalty) : 0;

    if (isa::is_gpr_load(in.op) && in.rd != 0) op.flags |= kFlagGprLoad;
    if (unit == Unit::kLoad || unit == Unit::kStore) op.flags |= kFlagMemUnit;
    if (unit == Unit::kAlu || unit == Unit::kMul || unit == Unit::kSimd) {
      op.flags |= kFlagPairable;
    }
    if (in.op == Opcode::kEcall || in.op == Opcode::kEbreak) op.flags |= kFlagYield;
    if (in.op == Opcode::kCsrrw || in.op == Opcode::kCsrrs ||
        in.op == Opcode::kCsrrc) {
      op.flags |= kFlagCsr;
    }
    if (in.op == Opcode::kPlSdotspH0) op.spr = 0;
    if (in.op == Opcode::kPlSdotspH1) op.spr = 1;
    if (tp->hwl_end_possible(pc + in.size)) op.flags |= kFlagHwlCand;
  }

  TranslateResult res;
  res.program = std::move(tp);
  return res;
}

}  // namespace rnnasip::translate
