// Ahead-of-time translation of verified programs (the kTranslated backend).
//
// The ISS pays a fetch (decode-cache hash probe), a hazard scan, statistics
// updates, and hook dispatch for every retired instruction — the classic
// fetch/decode/switch interpreter loop, and the cap on how much serving
// traffic one host can simulate. The translator removes all of it ahead of
// time: a program the static verifier (src/analysis) accepts is lowered once
// into a dense threaded-code image — one pre-decoded op per text slot, with
// its register-read mask, functional-unit flags, static hardware-loop
// back-edge candidacy, and its full cycle cost under the target TimingModel
// baked in. The TranslatedCore (tcore.h) then executes that image with a
// tight jump-table dispatch over host-resident state, bit-exact against the
// ISS in architectural effects *and* cycle counts.
//
// Verification is a hard precondition, not an optimization hint. The
// verifier proves exactly the guarantees the lowering relies on:
//   - CFG recovery: every control transfer lands on an instruction boundary
//     inside the text, so a dense slot array indexed by (pc - base) >> 2 is
//     total over reachable code;
//   - hardware-loop legality: loop bodies are well-nested and end bounds are
//     the static `setup_pc + offset` values, so back-edge checks can be
//     confined to statically flagged slots;
//   - memory safety: every access stays inside the declared MemoryMap, so
//     raw-pointer access with the ISS's trap rules inlined is sound;
//   - the static cycle bound (exact on stall-free programs) cross-checks the
//     baked-in cost model (tests/test_translate.cpp asserts both).
// A program the verifier rejects is refused with a structured error — the
// translated backend never runs unverified semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/asm/program.h"
#include "src/iss/core.h"
#include "src/iss/memory_map.h"

namespace rnnasip::translate {

/// Per-slot flags precomputed by the translator.
enum TOpFlags : uint8_t {
  kFlagGprLoad = 1 << 0,   ///< GPR-producing load with rd != x0 (load-use producer)
  kFlagMemUnit = 1 << 1,   ///< occupies the LSU (dual-issue pairing anchor)
  kFlagPairable = 1 << 2,  ///< 1-cycle ALU/MUL/SIMD (dual-issue candidate)
  kFlagHwlCand = 1 << 3,   ///< pc + size is a possible hardware-loop end
  kFlagYield = 1 << 4,     ///< ecall/ebreak — run-loop exit
  /// CSR access: the run loop keeps cycle/instret counters in locals and
  /// must sync them into the architectural CSRs before this op executes.
  kFlagCsr = 1 << 5,
};

/// One translated text slot: the decoded instruction plus everything the
/// ISS recomputes per retirement, resolved ahead of time.
struct TOp {
  isa::Instr in;
  uint32_t reads_mask = 0;  ///< bit r set iff the op reads GPR r (x0 never)
  uint16_t base_cost = 1;   ///< issue + unconditional in-cost penalties
  uint16_t taken_extra = 0; ///< additional cycles when a branch is taken
  uint8_t flags = 0;
  int8_t spr = -1;          ///< pl.sdotsp.h.{0,1} SPR index, else -1
};

/// An immutable translated program image. Shareable across cores/lanes
/// (execution state lives entirely in TranslatedCore).
struct TranslatedProgram {
  uint32_t base = 0;  ///< text load address
  uint32_t end = 0;   ///< first address past the text
  /// Dense slot array indexed by (pc - base) >> 2 (generated programs are
  /// uniformly 4-byte instructions; the translator refuses anything else).
  std::vector<TOp> code;
  /// Sorted static set of every possible hardware-loop end address
  /// (lp.setup/lp.setupi/lp.endi all compute `end = pc + offset` with a
  /// static offset — there are no dynamic loop bounds to miss).
  std::vector<uint32_t> hwl_ends;
  /// Timing model baked into base_cost/taken_extra (must match the core
  /// config the image runs under; TranslatedCore checks).
  iss::TimingModel timing;

  // Provenance from the verifier run that admitted this program.
  uint64_t static_min_cycles = 0;  ///< sound static cycle lower bound
  /// Certified WCET (sound static upper bound); 0 when the verifier could
  /// not bound the program (see Report::wcet_unbounded_reason).
  uint64_t static_max_cycles = 0;
  size_t num_instrs = 0;
  size_t num_blocks = 0;
  size_t num_hw_loops = 0;

  bool contains(uint32_t pc) const { return pc >= base && pc < end; }
  bool hwl_end_possible(uint32_t addr) const;
};

/// Why a program was refused (structured: stable code + human message).
struct TranslateError {
  std::string code;     ///< "verify-failed", "isa-gated", "bad-text", ...
  std::string message;
  bool ok() const { return code.empty(); }
};

struct TranslateResult {
  std::shared_ptr<const TranslatedProgram> program;  ///< null on refusal
  TranslateError error;
  bool ok() const { return program != nullptr; }
};

/// Translate `prog` for execution under `cfg` against the declared `map`.
/// Runs the full static verifier first (with cfg.timing so the static bound
/// is comparable); any verifier *error* refuses translation. ISA-gated
/// instructions (Xpulp/RNN-ext present while the config disables them) are
/// refused at translate time — the ISS would trap on them at runtime.
TranslateResult translate(const assembler::Program& prog,
                          const iss::MemoryMap& map,
                          const iss::Core::Config& cfg);

}  // namespace rnnasip::translate
