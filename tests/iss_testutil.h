// Shared helpers for ISS tests: build a tiny program, run it on a fresh
// core, and hand back the core for register/memory inspection.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/asm/builder.h"
#include "src/iss/core.h"

namespace rnnasip::iss_test {

struct Harness {
  std::unique_ptr<iss::Memory> mem;
  std::unique_ptr<iss::Core> core;
  iss::RunResult result;
};

/// Assemble the body emitted by `emit`, append an ebreak, run from the
/// program base, and return the harness for inspection. `setup` runs after
/// reset and may preset registers/memory.
inline Harness run_asm(const std::function<void(assembler::ProgramBuilder&)>& emit,
                       const std::function<void(iss::Core&, iss::Memory&)>& setup = {},
                       iss::Core::Config cfg = {}) {
  Harness h;
  h.mem = std::make_unique<iss::Memory>(1u << 20);
  assembler::ProgramBuilder b(0x1000);
  emit(b);
  b.ebreak();
  auto prog = b.build();
  h.core = std::make_unique<iss::Core>(h.mem.get(), cfg);
  h.core->load_program(prog);
  h.core->reset(prog.base);
  if (setup) setup(*h.core, *h.mem);
  h.result = h.core->run(10'000'000);
  return h;
}

/// Expect a clean ebreak exit.
inline void expect_ok(const Harness& h) {
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kEbreak) << h.result.trap_message;
}

}  // namespace rnnasip::iss_test
