// Shared harness for kernel tests: build a network at a given optimization
// level, run it on the ISS, and compare against the fixed-point golden model
// and the float reference.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip::kernel_test {

struct DeviceNet {
  std::unique_ptr<iss::Memory> mem;
  std::unique_ptr<iss::Core> core;
  kernels::BuiltNetwork net;
};

/// Build a device network; `add_layers` receives the program builder.
inline DeviceNet make_net(
    kernels::OptLevel level,
    const std::function<void(kernels::NetworkProgramBuilder&)>& add_layers,
    int max_tile = 8) {
  DeviceNet d;
  d.mem = std::make_unique<iss::Memory>(8u << 20);
  d.core = std::make_unique<iss::Core>(d.mem.get());
  kernels::NetworkProgramBuilder b(d.mem.get(), level, d.core->tanh_table(),
                                   d.core->sig_table(), max_tile);
  add_layers(b);
  d.net = b.finalize();
  d.core->load_program(d.net.program);
  return d;
}

/// Max |a - b| over two equal-sized int16 vectors, as Q3.12 reals.
inline double max_err_q(const std::vector<int16_t>& a, const std::vector<int16_t>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    m = std::max(m, std::abs(dequantize(a[i]) - dequantize(b[i])));
  }
  return m;
}

}  // namespace rnnasip::kernel_test
