// Direct tests of the software PLA routines: exhaustive bit-equivalence
// with the hardware unit over the whole int16 domain, and calling-convention
// checks (clobber set, reentrancy).
#include <gtest/gtest.h>

#include "src/asm/builder.h"
#include "src/iss/core.h"
#include "src/kernels/act_routines.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using namespace isa;

struct RoutineRig {
  std::unique_ptr<iss::Memory> mem;
  std::unique_ptr<iss::Core> core;
  assembler::Program prog;
  // 128 KiB input and output regions; LUT data lives above both.
  uint32_t in_addr = 0x20000;
  uint32_t out_addr = 0x40000;
  int count = 0;
};

/// Build a program that runs tanh or sig over `count` int16 inputs staged
/// in memory, through the SW routine.
RoutineRig make_rig(bool tanh, int count) {
  RoutineRig r;
  r.count = count;
  r.mem = std::make_unique<iss::Memory>(4u << 20);
  r.core = std::make_unique<iss::Core>(r.mem.get());
  ProgramBuilder b(0x1000);
  kernels::DeviceAllocator alloc(r.mem.get(), 0x60000);
  auto labels = kernels::make_act_routine_labels(b);

  b.li(kS2, static_cast<int32_t>(r.in_addr));
  b.li(kS3, static_cast<int32_t>(r.out_addr));
  b.li(kS4, count);
  auto loop = b.make_label();
  b.bind(loop);
  b.lh(kA0, 0, kS2);
  b.jal(kRa, tanh ? labels.tanh_label : labels.sig_label);
  b.sh(kA0, 0, kS3);
  b.addi(kS2, kS2, 2);
  b.addi(kS3, kS3, 2);
  b.addi(kS4, kS4, -1);
  b.bne(kS4, kZero, loop);
  b.ebreak();
  kernels::emit_act_routines(b, alloc, r.core->tanh_table(), r.core->sig_table(), labels);
  r.prog = b.build();
  r.core->load_program(r.prog);
  return r;
}

TEST(ActRoutines, TanhExhaustivelyMatchesHardwareUnit) {
  // All 65536 int16 inputs in one run (batched through memory).
  const int n = 65536;
  auto r = make_rig(/*tanh=*/true, n);
  std::vector<int16_t> inputs(n);
  for (int i = 0; i < n; ++i) inputs[i] = static_cast<int16_t>(i - 32768);
  r.mem->write_halves(r.in_addr, inputs);
  r.core->reset(r.prog.base);
  const auto res = r.core->run(40'000'000);
  ASSERT_EQ(res.exit, iss::RunResult::Exit::kEbreak) << res.trap_message;
  const auto out = r.mem->read_halves(r.out_addr, n);
  const auto& tbl = r.core->tanh_table();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<int16_t>(tbl.eval_raw(inputs[i]))) << inputs[i];
  }
}

TEST(ActRoutines, SigmoidExhaustivelyMatchesHardwareUnit) {
  const int n = 65536;
  auto r = make_rig(/*tanh=*/false, n);
  std::vector<int16_t> inputs(n);
  for (int i = 0; i < n; ++i) inputs[i] = static_cast<int16_t>(i - 32768);
  r.mem->write_halves(r.in_addr, inputs);
  r.core->reset(r.prog.base);
  const auto res = r.core->run(40'000'000);
  ASSERT_EQ(res.exit, iss::RunResult::Exit::kEbreak) << res.trap_message;
  const auto out = r.mem->read_halves(r.out_addr, n);
  const auto& tbl = r.core->sig_table();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<int16_t>(tbl.eval_raw(inputs[i]))) << inputs[i];
  }
}

TEST(ActRoutines, ClobberSetIsOnlyA0T0T1T2) {
  // Registers outside the documented clobber set survive a call.
  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  ProgramBuilder b(0x1000);
  kernels::DeviceAllocator alloc(&mem, 0x40000);
  auto labels = kernels::make_act_routine_labels(b);
  b.li(kS2, 111);
  b.li(kA1, 222);
  b.li(kT3, 333);
  b.li(kA0, 1000);
  b.jal(kRa, labels.tanh_label);
  b.ebreak();
  kernels::emit_act_routines(b, alloc, core.tanh_table(), core.sig_table(), labels);
  const auto prog = b.build();
  core.load_program(prog);
  core.reset(prog.base);
  ASSERT_TRUE(core.run().ok());
  EXPECT_EQ(core.reg(kS2), 111u);
  EXPECT_EQ(core.reg(kA1), 222u);
  EXPECT_EQ(core.reg(kT3), 333u);
  // And the result actually landed in a0.
  EXPECT_EQ(static_cast<int32_t>(core.reg(kA0)), core.tanh_table().eval_raw(1000));
}

TEST(ActRoutines, CostPerCallIsTensOfCycles) {
  // Sec. III-D's motivation: SW activations cost real cycles. Ours land in
  // the 15-35 cycle band per call (plus the call overhead at the site).
  auto r = make_rig(/*tanh=*/true, 1000);
  std::vector<int16_t> inputs(1000);
  for (int i = 0; i < 1000; ++i) inputs[i] = static_cast<int16_t>(i * 13 - 6000);
  r.mem->write_halves(r.in_addr, inputs);
  r.core->reset(r.prog.base);
  ASSERT_TRUE(r.core->run().ok());
  const double per_call =
      static_cast<double>(r.core->stats().total_cycles()) / 1000.0 - 8.0;  // loop overhead
  EXPECT_GT(per_call, 10.0);
  EXPECT_LT(per_call, 35.0);
}

}  // namespace
}  // namespace rnnasip
