// RRM agent wrapper tests: determinism across optimization levels, episode
// accounting, state reset, and misuse rejection.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "src/rrm/agents.h"

namespace rnnasip::rrm {
namespace {

using kernels::OptLevel;

struct AgentParts {
  nn::LstmParamsQ lstm;
  nn::FcParamsQ head;
};

AgentParts make_parts(int channels) {
  Rng rng(0xA6E);
  AgentParts p;
  p.lstm = nn::quantize_lstm(nn::random_lstm(rng, 2 * channels, 24, 0.3f));
  p.head = nn::quantize_fc(nn::random_fc(rng, 24, channels, nn::ActKind::kNone));
  return p;
}

TEST(DqnAgent, DecisionsIdenticalAcrossLevels) {
  const auto parts = make_parts(4);
  std::vector<int> reference;
  for (auto level : {OptLevel::kBaseline, OptLevel::kOutputTiling, OptLevel::kInputTiling}) {
    DqnAgent agent(parts.lstm, parts.head, level);
    GilbertElliottChannels env(4, 99);
    const auto ep = run_spectrum_episode(agent, env, 20);
    if (reference.empty()) {
      reference = ep.choices;
    } else {
      EXPECT_EQ(ep.choices, reference) << kernels::opt_level_letter(level);
    }
  }
}

TEST(DqnAgent, EpisodeAccountingAddsUp) {
  const auto parts = make_parts(5);
  DqnAgent agent(parts.lstm, parts.head, OptLevel::kInputTiling);
  GilbertElliottChannels env(5, 7);
  const auto ep = run_spectrum_episode(agent, env, 30);
  EXPECT_EQ(ep.successes + ep.collisions, 30);
  EXPECT_EQ(ep.choices.size(), 30u);
  EXPECT_EQ(agent.decisions(), 30);
  EXPECT_GT(ep.cycles, 0u);
  for (int c : ep.choices) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 5);
  }
}

TEST(DqnAgent, ResetRestoresDeterminism) {
  const auto parts = make_parts(4);
  DqnAgent agent(parts.lstm, parts.head, OptLevel::kLoadCompute);
  GilbertElliottChannels env1(4, 31);
  const auto ep1 = run_spectrum_episode(agent, env1, 15);
  agent.reset();
  GilbertElliottChannels env2(4, 31);
  const auto ep2 = run_spectrum_episode(agent, env2, 15);
  EXPECT_EQ(ep1.choices, ep2.choices);
}

TEST(DqnAgent, CyclesAndDecisionsAccumulateAcrossEpisodes) {
  const auto parts = make_parts(4);
  DqnAgent agent(parts.lstm, parts.head, OptLevel::kInputTiling);
  GilbertElliottChannels env1(4, 55);
  const auto ep1 = run_spectrum_episode(agent, env1, 20);
  GilbertElliottChannels env2(4, 55);
  const auto ep2 = run_spectrum_episode(agent, env2, 20);
  EXPECT_EQ(agent.decisions(), 40);
  EXPECT_GT(ep2.cycles, ep1.cycles);  // cumulative core statistics
  // Roughly constant cost per decision (same network every step).
  EXPECT_NEAR(static_cast<double>(ep2.cycles) / ep1.cycles, 2.0, 0.05);
}

TEST(DqnAgent, RejectsMismatchedShapes) {
  Rng rng(0xA6F);
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, 8, 24, 0.3f));
  const auto wrong_head = nn::quantize_fc(nn::random_fc(rng, 16, 4, nn::ActKind::kNone));
  EXPECT_THROW(DqnAgent(lstm, wrong_head, OptLevel::kBaseline), std::runtime_error);

  const auto head = nn::quantize_fc(nn::random_fc(rng, 24, 4, nn::ActKind::kNone));
  DqnAgent agent(lstm, head, OptLevel::kBaseline);
  GilbertElliottChannels env(6, 1);  // 2*6 != 8 observation size
  EXPECT_THROW(run_spectrum_episode(agent, env, 5), std::runtime_error);
}

}  // namespace
}  // namespace rnnasip::rrm
