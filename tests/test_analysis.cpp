// Static verifier: hand-built broken programs must each trip their rule,
// and every generated suite program at every optimization level must lint
// clean with a cycle lower bound the ISS respects.
#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/network_lint.h"
#include "src/analysis/verify.h"
#include "src/analysis/wcet.h"
#include "src/asm/builder.h"
#include "src/iss/core.h"
#include "src/iss/memory.h"
#include "src/iss/memory_map.h"
#include "src/kernels/layout.h"
#include "src/kernels/network.h"
#include "src/rrm/networks.h"
#include "src/translate/tcore.h"
#include "src/translate/translate.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using isa::Reg;

constexpr Reg kX5 = 5, kX6 = 6, kX10 = 10, kX11 = 11, kX12 = 12;

iss::MemoryMap small_map() {
  iss::MemoryMap map;
  map.add({"text", 0x1000, 0x1000, /*writable=*/false});
  map.add({"data", 0x10000, 16, /*writable=*/true});
  map.add({"weights", 0x20000, 64, /*writable=*/false});
  return map;
}

bool has_rule(const analysis::Report& rep, const std::string& rule) {
  for (const auto& f : rep.findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

/// Every *error* in the report carries the expected rule (the program is
/// broken in exactly one way).
void expect_only_error(const analysis::Report& rep, const std::string& rule) {
  EXPECT_GE(rep.errors(), 1) << rep.to_string();
  for (const auto& f : rep.findings) {
    if (f.severity == analysis::Severity::kError) {
      EXPECT_EQ(f.rule, rule) << rep.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Negative programs: one defect, one rule.
// ---------------------------------------------------------------------------

TEST(AnalysisNegative, BranchIntoHwLoopBody) {
  ProgramBuilder b;
  auto inside = b.make_label();
  auto end = b.make_label();
  b.li(kX5, 1);
  b.bne(kX5, isa::kZero, inside);  // jumps past the setup into the body
  b.lp_setupi(0, 4, end);
  b.addi(kX6, kX6, 1);
  b.bind(inside);
  b.addi(kX6, kX6, 1);
  b.bind(end);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "hwl.branch-into");
  EXPECT_FALSE(rep.clean());
}

TEST(AnalysisNegative, SprBackToBackDoubleUse) {
  ProgramBuilder b;
  b.li(kX10, 0x10000);
  b.pl_sdotsp_h(0, isa::kZero, kX10, isa::kZero);  // preload SPR0
  b.pl_sdotsp_h(0, isa::kZero, kX10, isa::kZero);  // SPR0 again: .0/.0
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  EXPECT_TRUE(has_rule(rep, "spr.back-to-back")) << rep.to_string();
  EXPECT_EQ(rep.errors(), 0) << rep.to_string();
  EXPECT_FALSE(rep.clean());  // warnings gate too
}

TEST(AnalysisNegative, OobPostIncrementStoreWalk) {
  ProgramBuilder b;
  auto head = b.make_label();
  b.li(kX10, 0x10000);
  b.li(kX11, 10);  // 10 halfword stores walk 20 bytes over a 16-byte segment
  b.bind(head);
  b.p_sh(isa::kZero, 2, kX10);
  b.addi(kX11, kX11, -1);
  b.bne(kX11, isa::kZero, head);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "mem.oob-store");
}

TEST(AnalysisNegative, StoreToWriteProtectedSegment) {
  ProgramBuilder b;
  b.li(kX10, 0x20000);  // the read-only "weights" segment
  b.li(kX5, 1);
  b.sh(kX5, 0, kX10);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "mem.write-protected");
}

TEST(AnalysisNegative, UseBeforeDefinition) {
  ProgramBuilder b;
  b.add(kX10, kX11, kX12);  // x11/x12 never written
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "df.use-undef");
}

TEST(AnalysisNegative, ControlTransferAsLastBodyInstruction) {
  ProgramBuilder b;
  auto end = b.make_label();
  b.lp_setupi(0, 2, end);
  b.addi(kX5, kX5, 1);
  b.ebreak();  // control as the last body instruction kills the back-edge
  b.bind(end);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "hwl.last-insn");
}

TEST(AnalysisNegative, SprAccumulateBeforePreload) {
  ProgramBuilder b;
  b.li(kX10, 0x10000);
  b.li(kX11, 0);
  b.li(kX12, 0);
  b.pl_sdotsp_h(1, kX12, kX10, kX11);  // SPR1 never preloaded
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "spr.uninit");
}

TEST(AnalysisNegative, MisalignedWordStore) {
  ProgramBuilder b;
  b.li(kX10, 0x10001);
  b.li(kX5, 0);
  b.sw(kX5, 0, kX10);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "mem.misaligned");
}

TEST(AnalysisNegative, FallOffEnd) {
  ProgramBuilder b;
  b.addi(kX5, isa::kZero, 1);  // no ebreak
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "cfg.fall-off-end");
}

TEST(AnalysisNegative, SdotspRdRs1Conflict) {
  ProgramBuilder b;
  b.li(kX10, 0x10000);
  b.pl_sdotsp_h(0, kX10, kX10, isa::kZero);  // accumulator == stream pointer
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "spr.rd-rs1-conflict");
}

TEST(AnalysisNegative, WrongHwLoopNestingOrder) {
  ProgramBuilder b;
  auto oend = b.make_label();
  auto iend = b.make_label();
  b.li(kX5, 0);
  b.li(kX6, 0);
  b.lp_setupi(0, 2, oend);  // outer on L0,
  b.lp_setupi(1, 2, iend);  // inner on L1: inverted
  b.addi(kX5, kX5, 1);
  b.bind(iend);
  b.addi(kX6, kX6, 1);
  b.bind(oend);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  expect_only_error(rep, "hwl.nesting");
}

TEST(AnalysisNegative, NonterminatingCountedLoop) {
  ProgramBuilder b;
  auto head = b.make_label();
  b.li(kX5, 5);
  b.bind(head);
  b.addi(kX5, kX5, -2);  // 3, 1, -1, ... never equal to zero
  b.bne(kX5, isa::kZero, head);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  EXPECT_TRUE(has_rule(rep, "cfg.nonterminating")) << rep.to_string();
  EXPECT_FALSE(rep.clean());
}

TEST(AnalysisNegative, HwLoopCountZeroStillExecutesOnce) {
  ProgramBuilder b;
  auto end = b.make_label();
  b.lp_setupi(0, 0, end);
  b.addi(kX5, kX5, 1);
  b.bind(end);
  b.ebreak();
  const auto rep = analysis::verify(b.build(), small_map());
  EXPECT_TRUE(has_rule(rep, "hwl.count-zero")) << rep.to_string();
  EXPECT_FALSE(rep.clean());
}

// ---------------------------------------------------------------------------
// Cycle bounds: exact on a stall-free hardware loop.
// ---------------------------------------------------------------------------

TEST(AnalysisBound, ExactOnStraightLineHwLoop) {
  ProgramBuilder b;
  auto end = b.make_label();
  b.li(kX5, 0);             // 1 cycle
  b.lp_setupi(0, 4, end);   // 1 cycle
  b.addi(kX5, kX5, 1);      // 4 x 2 cycles, back-edges free
  b.addi(kX6, kX5, 0);
  b.bind(end);
  b.ebreak();               // 1 cycle
  const auto prog = b.build();

  const auto rep = analysis::verify(prog, iss::MemoryMap{});
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.min_cycles, 11u);
  EXPECT_EQ(rep.max_cycles, 11u);  // hazard fixpoint keeps the WCET exact
  ASSERT_EQ(rep.loops.size(), 1u);
  EXPECT_TRUE(rep.loops[0].hardware);
  EXPECT_EQ(rep.loops[0].trips, 4u);
  EXPECT_EQ(rep.loops[0].trips_max, 4u);
  EXPECT_EQ(rep.loops[0].body_min_cycles, 2u);
  EXPECT_EQ(rep.loops[0].body_max_cycles, 2u);

  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  const auto run = core.run();
  ASSERT_TRUE(run.ok()) << run.describe();
  EXPECT_EQ(run.cycles, rep.min_cycles);
  EXPECT_EQ(run.cycles, rep.max_cycles);
}

TEST(AnalysisBound, NestedHwLoopsBracketMeasuredCycles) {
  ProgramBuilder b;
  auto oend = b.make_label();
  auto iend = b.make_label();
  b.li(kX5, 0);
  b.li(kX6, 0);
  b.lp_setupi(1, 3, oend);  // outer loop on L1,
  b.lp_setupi(0, 4, iend);  // inner loop on L0 (required nesting order)
  b.addi(kX5, kX5, 1);
  b.bind(iend);
  b.addi(kX6, kX6, 1);
  b.bind(oend);
  b.ebreak();
  const auto prog = b.build();

  const auto rep = analysis::verify(prog, iss::MemoryMap{});
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  // 2 li + outer setup + 3 x (inner setup + 4 x body + tail) + ebreak.
  EXPECT_EQ(rep.min_cycles, 22u);
  EXPECT_EQ(rep.max_cycles, 22u);
  ASSERT_EQ(rep.loops.size(), 2u);
  for (const auto& l : rep.loops) EXPECT_TRUE(l.hardware);
  // Loops are reported in program order: outer setup precedes inner setup.
  EXPECT_EQ(rep.loops[0].trips, 3u);
  EXPECT_EQ(rep.loops[1].trips, 4u);

  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  const auto run = core.run();
  ASSERT_TRUE(run.ok()) << run.describe();
  EXPECT_EQ(run.cycles, rep.min_cycles);
  EXPECT_EQ(run.cycles, rep.max_cycles);
}

TEST(AnalysisBound, SingleTripCountedLoopSolvedExactly) {
  // A do-while latch always executes its body at least once; with a start
  // count of 1 the interval solver must prove exactly one trip.
  ProgramBuilder b;
  auto head = b.make_label();
  b.li(kX5, 1);
  b.bind(head);
  b.addi(kX5, kX5, -1);
  b.bne(kX5, isa::kZero, head);
  b.ebreak();
  const auto prog = b.build();

  const auto rep = analysis::verify(prog, iss::MemoryMap{});
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.min_cycles, 4u);  // li + addi + untaken bne + ebreak
  EXPECT_EQ(rep.max_cycles, 4u);
  ASSERT_EQ(rep.loops.size(), 1u);
  EXPECT_FALSE(rep.loops[0].hardware);
  EXPECT_EQ(rep.loops[0].trips, 1u);
  EXPECT_EQ(rep.loops[0].trips_max, 1u);

  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  const auto run = core.run();
  ASSERT_TRUE(run.ok()) << run.describe();
  EXPECT_EQ(run.cycles, 4u);
}

TEST(AnalysisBound, SprConflictStallCountedInBothBounds) {
  // Back-to-back pl.sdotsp on the same SPR stalls one cycle on RI5CY; the
  // certified interval must charge it on both sides (program is otherwise
  // straight-line, so min == max == measured).
  ProgramBuilder b;
  b.li(kX10, 0x10000);
  b.pl_sdotsp_h(0, isa::kZero, kX10, isa::kZero);
  b.pl_sdotsp_h(0, isa::kZero, kX10, isa::kZero);  // same SPR: +1 stall
  b.ebreak();
  const auto prog = b.build();

  const auto rep = analysis::verify(prog, small_map());
  EXPECT_TRUE(has_rule(rep, "spr.back-to-back")) << rep.to_string();
  EXPECT_EQ(rep.errors(), 0) << rep.to_string();
  EXPECT_EQ(rep.min_cycles, 5u);
  EXPECT_EQ(rep.max_cycles, 5u);

  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  const auto run = core.run();
  ASSERT_TRUE(run.ok()) << run.describe();
  EXPECT_EQ(run.cycles, 5u);
}

// ---------------------------------------------------------------------------
// Memory-map queries.
// ---------------------------------------------------------------------------

TEST(MemoryMap, SegmentQueries) {
  const iss::MemoryMap map = small_map();
  ASSERT_EQ(map.segments().size(), 3u);
  EXPECT_TRUE(map.contains(0x10000, 16));
  EXPECT_FALSE(map.contains(0x10000, 17));
  EXPECT_TRUE(map.writable(0x10000, 2));
  EXPECT_FALSE(map.writable(0x20000, 2));
  const auto* seg = map.find(0x2000F);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->name, "weights");
  EXPECT_EQ(map.enclosing(0x1FFFF, 4), nullptr);  // straddles a gap
}

TEST(MemoryMap, OfLiveMemoryCoversMappedSegments) {
  iss::Memory mem(1u << 16);
  auto bytes = std::make_shared<std::vector<uint8_t>>(64, 0);
  mem.map_segment(0x40000, bytes, /*read_only=*/true);
  const auto map = iss::MemoryMap::of(mem);
  const auto* seg = map.find(0x40010);
  ASSERT_NE(seg, nullptr);
  EXPECT_FALSE(seg->writable);
  EXPECT_TRUE(map.contains(0, 1u << 16));  // flat storage still covered
}

// ---------------------------------------------------------------------------
// Positive: every suite program at every level lints clean.
// ---------------------------------------------------------------------------

TEST(AnalysisSuite, AllNetworksAllLevelsClean) {
  for (const auto& def : rrm::rrm_suite()) {
    const rrm::RrmNetwork net{def};
    for (kernels::OptLevel level : kernels::kAllOptLevels) {
      iss::Memory mem(16u << 20);
      iss::Core core(&mem);
      const auto built = net.build(&mem, level, core.tanh_table(),
                                   core.sig_table());
      const auto rep = analysis::verify_network(built);
      EXPECT_TRUE(rep.clean())
          << def.name << " level " << kernels::opt_level_letter(level) << "\n"
          << rep.to_string();
      EXPECT_GT(rep.min_cycles, 0u) << def.name;
    }
  }
}

TEST(AnalysisSuite, SplitParameterBuildsClean) {
  const rrm::RrmNetwork net{rrm::find_network("challita17")};
  for (kernels::OptLevel level : kernels::kAllOptLevels) {
    iss::Memory mem(16u << 20);
    iss::Core core(&mem);
    const auto built = net.build(&mem, level, core.tanh_table(),
                                 core.sig_table(), /*max_tile=*/8,
                                 kernels::kParamBase);
    ASSERT_NE(built.param_base, 0u);
    const auto rep = analysis::verify_network(built);
    EXPECT_TRUE(rep.clean())
        << "split level " << kernels::opt_level_letter(level) << "\n"
        << rep.to_string();
  }
}

TEST(AnalysisSuite, StaticBoundNeverExceedsMeasuredCycles) {
  for (const char* name : {"ahmed19", "eisen19"}) {
    const rrm::RrmNetwork net{rrm::find_network(name)};
    for (kernels::OptLevel level : kernels::kAllOptLevels) {
      iss::Memory mem(16u << 20);
      iss::Core core(&mem);
      const auto built = net.build(&mem, level, core.tanh_table(),
                                   core.sig_table());
      const auto rep = analysis::verify_network(built);
      ASSERT_TRUE(rep.clean()) << name;
      core.load_program(built.program);
      kernels::reset_state(mem, built);
      const auto input = net.make_input(0);
      const auto fr = kernels::try_run_forward(core, mem, built, input);
      ASSERT_TRUE(fr.ok()) << fr.result.describe();
      EXPECT_LE(rep.min_cycles, fr.result.cycles)
          << name << " level " << kernels::opt_level_letter(level);
      EXPECT_GT(rep.min_cycles, fr.result.cycles / 2)  // bound is not vacuous
          << name << " level " << kernels::opt_level_letter(level);
      ASSERT_GT(rep.max_cycles, 0u) << rep.wcet_unbounded_reason;
      EXPECT_GE(rep.max_cycles, fr.result.cycles)
          << name << " level " << kernels::opt_level_letter(level);
    }
  }
}

// Fuzz-style sweep mirroring test_translate's parity corpus: every suite
// program at every level must carry a certified interval with
// min <= measured <= max on BOTH execution backends, and the translated
// artifact must carry the same certified WCET.
TEST(AnalysisSuite, CertifiedIntervalBracketsBothBackends) {
  for (const auto& def : rrm::rrm_suite()) {
    const rrm::RrmNetwork net{def};
    for (kernels::OptLevel level : kernels::kAllOptLevels) {
      SCOPED_TRACE(std::string(def.name) + "@" +
                   kernels::opt_level_letter(level));
      iss::Memory mem(16u << 20);
      iss::Core core(&mem);
      const auto built = net.build(&mem, level, core.tanh_table(),
                                   core.sig_table());
      const auto rep = analysis::verify_network(built);
      ASSERT_TRUE(rep.clean()) << rep.to_string();
      ASSERT_GT(rep.max_cycles, 0u) << rep.wcet_unbounded_reason;
      ASSERT_LE(rep.min_cycles, rep.max_cycles);

      const auto input = net.make_input(1);

      core.load_program(built.program);
      kernels::reset_state(mem, built);
      const auto fi = kernels::try_run_forward(core, mem, built, input);
      ASSERT_TRUE(fi.ok()) << fi.result.describe();
      EXPECT_LE(rep.min_cycles, fi.result.cycles);
      EXPECT_GE(rep.max_cycles, fi.result.cycles);

      const auto tr = translate::translate(
          built.program, analysis::memory_map_of(built), iss::Core::Config{});
      ASSERT_TRUE(tr.ok()) << tr.error.message;
      EXPECT_EQ(tr.program->static_max_cycles, rep.max_cycles);
      translate::TranslatedCore tcore(&mem);
      tcore.bind(tr.program);
      kernels::reset_state(mem, built);
      const auto ft = kernels::try_run_forward(tcore, mem, built, input);
      ASSERT_TRUE(ft.ok()) << ft.result.describe();
      EXPECT_LE(rep.min_cycles, ft.result.cycles);
      EXPECT_GE(rep.max_cycles, ft.result.cycles);
    }
  }
}

// The fault-campaign watchdog is now derived from the certified WCET (x2)
// whenever a bound exists, not from the loose min_cycles x64 heuristic.
TEST(AnalysisSuite, CampaignWatchdogDerivesFromWcet) {
  const rrm::RrmNetwork net{rrm::find_network("ahmed19")};
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  const auto built = net.build(&mem, kernels::OptLevel::kInputTiling,
                               core.tanh_table(), core.sig_table());
  const iss::TimingModel timing;
  const auto bounds = analysis::static_bounds(built, timing);
  ASSERT_TRUE(bounds.bounded()) << bounds.unbounded_reason;
  EXPECT_EQ(analysis::campaign_watchdog(built, timing),
            bounds.max_cycles * analysis::kWcetWatchdogMargin);
  EXPECT_LT(bounds.max_cycles * analysis::kWcetWatchdogMargin,
            bounds.min_cycles * analysis::kCampaignWatchdogMargin);
}

}  // namespace
}  // namespace rnnasip
