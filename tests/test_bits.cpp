// Tests for the bit-manipulation helpers.
#include <gtest/gtest.h>

#include "src/common/bits.h"
#include "src/common/rng.h"

namespace rnnasip {
namespace {

TEST(Bits, Extract) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 3, 0), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
  EXPECT_EQ(bit(0x80000000u, 31), 1u);
  EXPECT_EQ(bit(0x80000000u, 30), 0u);
}

TEST(SignExtend, Widths) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0xFFFFFFFFu, 32), -1);
}

TEST(Fits, SignedAndUnsigned) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
  EXPECT_TRUE(fits_unsigned(4095, 12));
  EXPECT_FALSE(fits_unsigned(4096, 12));
}

TEST(Halves, PackUnpackRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int16_t lo = rng.next_i16();
    const int16_t hi = rng.next_i16();
    const uint32_t p = pack_halves(lo, hi);
    EXPECT_EQ(half_lo(p), lo);
    EXPECT_EQ(half_hi(p), hi);
  }
}

TEST(ClipSigned, Bounds) {
  EXPECT_EQ(clip_signed(40000, 16), 32767);
  EXPECT_EQ(clip_signed(-40000, 16), -32768);
  EXPECT_EQ(clip_signed(123, 16), 123);
  EXPECT_EQ(clip_signed(5, 4), 5);
  EXPECT_EQ(clip_signed(8, 4), 7);
  EXPECT_EQ(clip_signed(-9, 4), -8);
}

}  // namespace
}  // namespace rnnasip
