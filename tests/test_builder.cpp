// Tests for the programmatic assembler: label fixups, pseudo-instruction
// expansion, the register pool, and encode round-trips of whole programs.
#include <gtest/gtest.h>

#include "src/asm/builder.h"
#include "src/isa/decode.h"

namespace rnnasip::assembler {
namespace {

using namespace isa;

TEST(Builder, ForwardAndBackwardBranchFixups) {
  ProgramBuilder b(0x1000);
  auto fwd = b.make_label();
  auto back = b.make_label();
  b.bind(back);
  b.addi(kA0, kA0, 1);
  b.beq(kA0, kA1, fwd);   // forward: +8 from the beq
  b.bne(kA0, kA1, back);  // backward: -8 from the bne
  b.bind(fwd);
  b.ebreak();
  auto p = b.build();
  EXPECT_EQ(p.instrs[1].imm, 8);
  EXPECT_EQ(p.instrs[2].imm, -8);
}

TEST(Builder, UnboundLabelThrows) {
  ProgramBuilder b;
  auto l = b.make_label();
  b.jal(kZero, l);
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, DoubleBindThrows) {
  ProgramBuilder b;
  auto l = b.make_label();
  b.bind(l);
  EXPECT_THROW(b.bind(l), std::runtime_error);
}

TEST(Builder, LiExpansion) {
  ProgramBuilder b;
  b.li(kA0, 5);            // 1 instr (addi)
  b.li(kA1, 0x12345678);   // 2 instrs (lui+addi)
  b.li(kA2, -4096);        // 1 instr: lui with all-ones upper immediate
  b.li(kA3, 0x7FFFF000);   // 1 instr: lui only (low part zero)
  auto p = b.build();
  ASSERT_EQ(p.instrs.size(), 5u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kAddi);
  EXPECT_EQ(p.instrs[1].op, Opcode::kLui);
  EXPECT_EQ(p.instrs[2].op, Opcode::kAddi);
}

TEST(Builder, LpSetupiBodyTooLongThrows) {
  // The 5-bit end offset limits lp.setupi bodies to 15 instructions; longer
  // bodies must use lp.setup. build() must reject the overflow.
  ProgramBuilder b;
  auto end = b.make_label();
  b.lp_setupi(0, 10, end);
  for (int i = 0; i < 20; ++i) b.addi(kA0, kA0, 1);
  b.bind(end);
  b.ebreak();
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, ProgramEncodesAndDecodesBack) {
  ProgramBuilder b(0x2000);
  auto end = b.make_label();
  b.li(kA0, 0x8000);
  b.lp_setupi(0, 4, end);
  b.p_lw(kA1, 4, kA0);
  b.pv_sdotsp_h(kA2, kA1, kA1);
  b.bind(end);
  b.pl_tanh(kA3, kA2);
  b.ebreak();
  auto p = b.build();
  const auto words = p.encode_words();
  ASSERT_EQ(words.size(), p.instrs.size());
  for (size_t i = 0; i < words.size(); ++i) {
    auto back = decode(words[i]);
    ASSERT_TRUE(back) << "instr " << i;
    EXPECT_EQ(back->op, p.instrs[i].op) << "instr " << i;
  }
}

TEST(Builder, AddressOf) {
  ProgramBuilder b(0x1000);
  b.nop();
  b.nop();
  b.ebreak();
  auto p = b.build();
  EXPECT_EQ(p.address_of(0), 0x1000u);
  EXPECT_EQ(p.address_of(2), 0x1008u);
  EXPECT_EQ(p.size_bytes(), 12u);
}

TEST(RegPool, AllocFreeCycle) {
  RegPool pool;
  const int n = pool.available();
  EXPECT_GE(n, 20);
  Reg r1 = pool.alloc();
  Reg r2 = pool.alloc();
  EXPECT_NE(r1, r2);
  EXPECT_EQ(pool.available(), n - 2);
  pool.free(r1);
  EXPECT_EQ(pool.available(), n - 1);
  pool.free(r2);
  EXPECT_EQ(pool.available(), n);
}

TEST(RegPool, NeverHandsOutReservedRegs) {
  RegPool pool;
  Reg r;
  while (pool.try_alloc(&r)) {
    EXPECT_NE(r, kZero);
    EXPECT_NE(r, kRa);
    EXPECT_NE(r, kSp);
    EXPECT_NE(r, kGp);
    EXPECT_NE(r, kTp);
    EXPECT_NE(r, kS0);
  }
}

TEST(RegPool, ExhaustionThrowsAndDoubleFreeThrows) {
  RegPool pool;
  Reg r = pool.alloc();
  pool.free(r);
  EXPECT_THROW(pool.free(r), std::runtime_error);
  while (pool.available() > 0) pool.alloc();
  EXPECT_THROW(pool.alloc(), std::runtime_error);
}

}  // namespace
}  // namespace rnnasip::assembler
