// RV32C compressor tests: directed forms plus the round-trip property
// try_compress -> decode_compressed == identity, and the compress/decode
// inverse property over the whole compressed opcode space.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/isa/isa.h"

namespace rnnasip::isa {
namespace {

Instr mk(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm = 0) {
  Instr in;
  in.op = op;
  in.rd = rd;
  in.rs1 = rs1;
  in.rs2 = rs2;
  in.imm = imm;
  return in;
}

void expect_roundtrip(const Instr& in) {
  const auto h = try_compress(in);
  ASSERT_TRUE(h.has_value()) << mnemonic(in.op);
  const auto back = decode_compressed(*h);
  ASSERT_TRUE(back.has_value()) << mnemonic(in.op) << " 0x" << std::hex << *h;
  EXPECT_EQ(back->op, in.op) << std::hex << *h;
  EXPECT_EQ(back->rd, in.rd) << mnemonic(in.op);
  EXPECT_EQ(back->rs1, in.rs1) << mnemonic(in.op);
  EXPECT_EQ(back->rs2, in.rs2) << mnemonic(in.op);
  EXPECT_EQ(back->imm, in.imm) << mnemonic(in.op);
  EXPECT_EQ(back->size, 2);
}

TEST(Compress, KnownEncodings) {
  EXPECT_EQ(try_compress(mk(Opcode::kAddi, kA0, kA0, 0, 1)), 0x0505);   // c.addi
  EXPECT_EQ(try_compress(mk(Opcode::kAddi, kA0, kZero, 0, -1)), 0x557D);  // c.li
  EXPECT_EQ(try_compress(mk(Opcode::kAdd, kA0, kZero, kA1)), 0x852E);   // c.mv
  EXPECT_EQ(try_compress(mk(Opcode::kAdd, kA0, kA0, kA1)), 0x952E);     // c.add
  EXPECT_EQ(try_compress(mk(Opcode::kLw, kA0, kSp, 0, 8)), 0x4522);     // c.lwsp
  EXPECT_EQ(try_compress(mk(Opcode::kSw, 0, kSp, kA0, 12)), 0xC62A);    // c.swsp
  EXPECT_EQ(try_compress(mk(Opcode::kLw, kA2, kA0, 0, 0)), 0x4110);     // c.lw
  EXPECT_EQ(try_compress(mk(Opcode::kEbreak, 0, 0, 0)), 0x9002);
}

TEST(Compress, RefusesUncompressibleForms) {
  // Immediates/registers outside the compressed ranges.
  EXPECT_FALSE(try_compress(mk(Opcode::kAddi, kA0, kA0, 0, 100)));   // imm6 overflow
  EXPECT_FALSE(try_compress(mk(Opcode::kAddi, kA0, kA1, 0, 1)));     // rd != rs1
  EXPECT_FALSE(try_compress(mk(Opcode::kLw, kA0, kA1, 0, 2)));      // misaligned
  EXPECT_FALSE(try_compress(mk(Opcode::kLw, kT3, kT4, 0, 0)));      // not c-regs
  EXPECT_FALSE(try_compress(mk(Opcode::kSub, kA0, kA1, kA2)));      // rd != rs1
  EXPECT_FALSE(try_compress(mk(Opcode::kMul, kA0, kA0, kA1)));      // no RVC mul
  EXPECT_FALSE(try_compress(mk(Opcode::kPvSdotspH, kA0, kA0, kA1))); // no RVC Xpulp
  EXPECT_FALSE(try_compress(mk(Opcode::kBeq, 0, kA0, kA1, 8)));     // rs2 != x0
}

TEST(Compress, RoundTripDirectedForms) {
  expect_roundtrip(mk(Opcode::kAddi, kZero, kZero, 0, 0));     // c.nop
  expect_roundtrip(mk(Opcode::kAddi, kS1, kS1, 0, -17));       // c.addi
  expect_roundtrip(mk(Opcode::kAddi, kSp, kSp, 0, -64));       // c.addi16sp
  expect_roundtrip(mk(Opcode::kAddi, kA2, kSp, 0, 64));        // c.addi4spn
  expect_roundtrip(mk(Opcode::kAddi, kT0, kZero, 0, 31));      // c.li
  expect_roundtrip(mk(Opcode::kLui, kA3, 0, 0, 0x1F));         // c.lui
  expect_roundtrip(mk(Opcode::kLui, kA3, 0, 0, 0xFFFE0));      // c.lui, negative
  expect_roundtrip(mk(Opcode::kLw, kA4, kSp, 0, 252));         // c.lwsp max
  expect_roundtrip(mk(Opcode::kSw, 0, kA1, kA2, 124));         // c.sw max
  expect_roundtrip(mk(Opcode::kSlli, kT1, kT1, 0, 31));
  expect_roundtrip(mk(Opcode::kSrli, kA5, kA5, 0, 3));
  expect_roundtrip(mk(Opcode::kSrai, kS0, kS0, 0, 12));
  expect_roundtrip(mk(Opcode::kAndi, kA0, kA0, 0, -32));
  expect_roundtrip(mk(Opcode::kSub, kA0, kA0, kA1));
  expect_roundtrip(mk(Opcode::kXor, kS1, kS1, kA3));
  expect_roundtrip(mk(Opcode::kOr, kA4, kA4, kA5));
  expect_roundtrip(mk(Opcode::kAnd, kA2, kA2, kA0));
  expect_roundtrip(mk(Opcode::kJal, kZero, 0, 0, -2048));      // c.j
  expect_roundtrip(mk(Opcode::kJal, kRa, 0, 0, 2046));         // c.jal
  expect_roundtrip(mk(Opcode::kJalr, kZero, kA0, 0, 0));       // c.jr
  expect_roundtrip(mk(Opcode::kJalr, kRa, kT2, 0, 0));         // c.jalr
  expect_roundtrip(mk(Opcode::kBeq, 0, kA0, kZero, -256)); // c.beqz
  expect_roundtrip(mk(Opcode::kBne, 0, kS1, kZero, 254));  // c.bnez
}

TEST(Compress, InverseOfDecodeOverWholeCompressedSpace) {
  // Property: for every decodable 16-bit word, compressing the decoded
  // instruction reproduces an equivalent compressed word (decode again and
  // compare) — i.e. try_compress is a right-inverse of decode_compressed.
  int checked = 0;
  for (uint32_t h = 0; h <= 0xFFFF; ++h) {
    if ((h & 0x3) == 0x3) continue;
    const auto in = decode_compressed(static_cast<uint16_t>(h));
    if (!in) continue;
    const auto back = try_compress(*in);
    ASSERT_TRUE(back.has_value()) << "0x" << std::hex << h << " decoded to "
                                  << mnemonic(in->op) << " but did not re-compress";
    const auto in2 = decode_compressed(*back);
    ASSERT_TRUE(in2.has_value());
    EXPECT_EQ(in2->op, in->op) << std::hex << h;
    EXPECT_EQ(in2->rd, in->rd) << std::hex << h;
    EXPECT_EQ(in2->rs1, in->rs1) << std::hex << h;
    EXPECT_EQ(in2->rs2, in->rs2) << std::hex << h;
    EXPECT_EQ(in2->imm, in->imm) << std::hex << h;
    ++checked;
  }
  EXPECT_GT(checked, 10000);
}

TEST(Compress, CompressedFormsExecuteIdentically) {
  // Size is the only difference: expanding a compressed form and executing
  // the 32-bit original must give identical architectural results. Spot
  // check with the immediate-heavy forms.
  Rng rng(0xC0DE);
  for (int i = 0; i < 200; ++i) {
    const int32_t imm = static_cast<int32_t>(rng.next_below(64)) - 32;
    const Instr full = mk(Opcode::kAddi, kA0, kA0, 0, imm);
    const auto h = try_compress(full);
    if (!h) continue;
    const auto compressed = decode_compressed(*h);
    ASSERT_TRUE(compressed);
    EXPECT_EQ(compressed->imm, full.imm);
    EXPECT_EQ(compressed->rd, full.rd);
  }
}

}  // namespace
}  // namespace rnnasip::isa
