// Whole-program compression pass tests: shrunken programs execute
// identically (outputs, instruction counts, cycles), text shrinks, and all
// PC-relative operands survive relayout.
#include <gtest/gtest.h>

#include "src/asm/compress_pass.h"
#include "src/asm/parser.h"
#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip {
namespace {

using assembler::compress_program;
using kernels::OptLevel;

TEST(CompressPass, BranchLoopSurvivesRelayout) {
  const auto p = assembler::assemble(R"(
      li a0, 0
      li a1, 10
    loop:
      addi a0, a0, 1
      bne a0, a1, loop
      ebreak
  )");
  const auto cp = compress_program(p);
  EXPECT_LT(cp.text_bytes, p.size_bytes());

  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  mem.write_block(cp.base, cp.bytes());
  core.reset(cp.base);
  const auto res = core.run();
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kEbreak);
  EXPECT_EQ(core.reg(isa::kA0), 10u);
}

TEST(CompressPass, HardwareLoopBoundsSurviveRelayout) {
  const auto p = assembler::assemble(R"(
      li a0, 0
      lp.setupi 0, 25, end
      addi a0, a0, 2
      addi a1, a1, 1
    end:
      ebreak
  )");
  const auto cp = compress_program(p);
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  mem.write_block(cp.base, cp.bytes());
  core.reset(cp.base);
  const auto res = core.run();
  ASSERT_EQ(res.exit, iss::RunResult::Exit::kEbreak) << res.trap_message;
  EXPECT_EQ(core.reg(isa::kA0), 50u);
  EXPECT_EQ(core.reg(isa::kA1), 25u);
}

struct NetCase {
  const char* name;
  OptLevel level;
};

class CompressPassNet : public ::testing::TestWithParam<NetCase> {};

TEST_P(CompressPassNet, NetworkProgramsRunIdenticallyCompressed) {
  const auto& pc = GetParam();
  Rng rng(0xC0);
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, 8, 16, 0.3f));
  const auto head = nn::quantize_fc(nn::random_fc(rng, 16, 6, nn::ActKind::kTanh));
  const auto x = nn::quantize_vector(nn::random_vector(rng, 8, 1.0f));

  // Reference: uncompressed run.
  iss::Memory mem1(8u << 20);
  iss::Core core1(&mem1);
  kernels::NetworkProgramBuilder b1(&mem1, pc.level, core1.tanh_table(), core1.sig_table());
  b1.add_lstm(lstm);
  b1.add_fc(head);
  const auto net1 = b1.finalize();
  core1.load_program(net1.program);
  kernels::reset_state(mem1, net1);
  const auto out1 = kernels::run_forward(core1, mem1, net1, x);

  // Compressed: same data image, text replaced by the compressed stream.
  iss::Memory mem2(8u << 20);
  iss::Core core2(&mem2);
  kernels::NetworkProgramBuilder b2(&mem2, pc.level, core2.tanh_table(), core2.sig_table());
  b2.add_lstm(lstm);
  b2.add_fc(head);
  const auto net2 = b2.finalize();
  const auto cp = compress_program(net2.program);
  ASSERT_LT(cp.text_bytes, net2.program.size_bytes());
  mem2.write_block(cp.base, cp.bytes());
  kernels::reset_state(mem2, net2);
  mem2.write_halves(net2.input_addr, x);
  core2.reset(cp.base);
  const auto res = core2.run();
  ASSERT_TRUE(res.ok()) << res.trap_message;
  const auto out2 =
      mem2.read_halves(net2.output_addr, static_cast<size_t>(net2.output_count));

  EXPECT_EQ(out1, out2);
  // Identical retired-instruction and cycle counts: compression changes
  // fetch bytes, not the execution schedule.
  EXPECT_EQ(core1.stats().total_instrs(), core2.stats().total_instrs());
  EXPECT_EQ(core1.stats().total_cycles(), core2.stats().total_cycles());
}

INSTANTIATE_TEST_SUITE_P(Levels, CompressPassNet,
                         ::testing::Values(NetCase{"b", OptLevel::kXpulpSimd},
                                           NetCase{"c", OptLevel::kOutputTiling},
                                           NetCase{"e", OptLevel::kInputTiling},
                                           NetCase{"a", OptLevel::kBaseline}),
                         [](const ::testing::TestParamInfo<NetCase>& i) {
                           return std::string(i.param.name);
                         });

TEST(CompressPass, AchievesMeaningfulReduction) {
  // RVC typically saves 20-30% of text on compiler output; our generated
  // kernels are SIMD-heavy (uncompressible), so expect a smaller but real
  // saving on baseline-level code.
  Rng rng(0xC1);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 32, 8, nn::ActKind::kReLU));
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kBaseline, core.tanh_table(),
                                   core.sig_table());
  b.add_fc(fc);
  const auto net = b.finalize();
  const auto cp = compress_program(net.program);
  const double ratio = static_cast<double>(cp.text_bytes) / net.program.size_bytes();
  EXPECT_LT(ratio, 0.95);
  EXPECT_GT(ratio, 0.5);
}

}  // namespace
}  // namespace rnnasip
