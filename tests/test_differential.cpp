// Differential fuzzing: randomized network architectures (layer kinds,
// dimensions, activations) are generated, built at two randomly chosen
// optimization levels, and executed — the two devices and the golden model
// must agree bit-exactly on every output. This hunts corner cases the
// directed shape grids miss (odd tails after tails, tiny layers feeding
// wide ones, conv/recurrent mixes).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernel_test::make_net;
using kernels::OptLevel;
using nn::ActKind;

struct RandomNet {
  std::function<void(kernels::NetworkProgramBuilder&)> add_layers;
  std::function<std::vector<int16_t>(const std::vector<int16_t>&,
                                     const activation::PlaTable&,
                                     const activation::PlaTable&)>
      golden;  // stateless per call (fresh state each forward not needed: we
               // run a single forward pass per net)
  int input_count = 0;
};

ActKind random_act(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return ActKind::kNone;
    case 1: return ActKind::kReLU;
    case 2: return ActKind::kTanh;
    default: return ActKind::kSigmoid;
  }
}

TEST(Differential, RandomFcStacksAgreeEverywhere) {
  Rng rng(0xD1FF);
  for (int trial = 0; trial < 30; ++trial) {
    // 1-4 FC layers with random even-ish dims.
    const int depth = 1 + static_cast<int>(rng.next_below(4));
    int cur = 2 * (1 + static_cast<int>(rng.next_below(40)));  // even input
    std::vector<nn::FcParamsQ> layers;
    const int input_count = cur;
    for (int l = 0; l < depth; ++l) {
      int next = 1 + static_cast<int>(rng.next_below(40));
      if (l + 1 < depth && next % 2 != 0) ++next;  // non-final layers even
      layers.push_back(nn::quantize_fc(nn::random_fc(rng, cur, next, random_act(rng))));
      cur = next;
    }
    const auto x = nn::quantize_vector(nn::random_vector(rng, input_count, 1.0f));

    // Pick two distinct random levels plus the golden model.
    const auto level_a = kernels::kAllOptLevels[rng.next_below(5)];
    const auto level_b = kernels::kAllOptLevels[rng.next_below(5)];
    std::vector<int16_t> out_a, out_b, want;
    for (int which = 0; which < 2; ++which) {
      auto d = make_net(which == 0 ? level_a : level_b,
                        [&](kernels::NetworkProgramBuilder& b) {
                          for (const auto& l : layers) b.add_fc(l);
                        });
      auto out = kernels::run_forward(*d.core, *d.mem, d.net, x);
      if (which == 0) {
        out_a = out;
        // Golden model once.
        std::vector<int16_t> cur_v = x;
        for (const auto& l : layers) {
          cur_v = nn::fc_forward_fixp(l, cur_v, d.core->tanh_table(), d.core->sig_table());
        }
        want = cur_v;
      } else {
        out_b = out;
      }
    }
    ASSERT_EQ(out_a, want) << "trial " << trial << " level "
                           << kernels::opt_level_letter(level_a);
    ASSERT_EQ(out_b, want) << "trial " << trial << " level "
                           << kernels::opt_level_letter(level_b);
  }
}

TEST(Differential, RandomRecurrentStacksAgreeEverywhere) {
  Rng rng(0xD1FE);
  for (int trial = 0; trial < 12; ++trial) {
    const int m = 2 * (1 + static_cast<int>(rng.next_below(10)));
    int n = 2 + static_cast<int>(rng.next_below(24));
    if ((m + n) % 2 != 0) ++n;
    const bool use_gru = rng.next_below(2) == 0;
    const int head_out = 1 + static_cast<int>(rng.next_below(12));
    const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, m, n, 0.3f));
    const auto gru = nn::quantize_gru(nn::random_gru(rng, m, n, 0.3f));
    const auto head = nn::quantize_fc(nn::random_fc(rng, n, head_out, random_act(rng)));

    std::vector<std::vector<int16_t>> inputs;
    for (int t = 0; t < 3; ++t)
      inputs.push_back(nn::quantize_vector(nn::random_vector(rng, m, 1.0f)));

    std::vector<int16_t> reference;
    for (auto level : {OptLevel::kBaseline, OptLevel::kOutputTiling,
                       OptLevel::kInputTiling}) {
      auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) {
        if (use_gru) {
          b.add_gru(gru);
        } else {
          b.add_lstm(lstm);
        }
        b.add_fc(head);
      });
      kernels::reset_state(*d.mem, d.net);
      std::vector<int16_t> out;
      for (const auto& x : inputs) out = kernels::run_forward(*d.core, *d.mem, d.net, x);
      if (reference.empty()) {
        reference = out;
      } else {
        ASSERT_EQ(out, reference)
            << "trial " << trial << (use_gru ? " gru" : " lstm") << " level "
            << kernels::opt_level_letter(level);
      }
    }
  }
}

TEST(Differential, RandomConvStacksAgreeEverywhere) {
  Rng rng(0xD1FD);
  for (int trial = 0; trial < 8; ++trial) {
    const int in_ch = 1 + static_cast<int>(rng.next_below(3));
    const int out_ch = 1 + static_cast<int>(rng.next_below(6));
    const int k = 1 + 2 * static_cast<int>(rng.next_below(2));  // 1 or 3
    const int hw = k + 3 + static_cast<int>(rng.next_below(6));
    const auto conv = nn::quantize_conv(
        nn::random_conv(rng, in_ch, out_ch, k,
                        rng.next_below(2) ? ActKind::kReLU : ActKind::kNone));
    const auto in = nn::quantize_tensor(nn::random_tensor(rng, in_ch, hw, hw));

    std::vector<int16_t> reference;
    for (auto level : kernels::kAllOptLevels) {
      auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) {
        b.add_conv(conv, hw, hw);
      });
      const auto out = kernels::run_forward(*d.core, *d.mem, d.net, in.data);
      if (reference.empty()) {
        reference = out;
      } else {
        ASSERT_EQ(out, reference) << "trial " << trial << " level "
                                  << kernels::opt_level_letter(level);
      }
    }
    // And against the golden model.
    const auto want = nn::conv2d_forward_fixp(conv, in);
    ASSERT_EQ(reference, want.data) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rnnasip
