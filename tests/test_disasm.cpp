// Disassembler output format tests (the Table II listing depends on these
// conventions: post-increment `imm(rs1!)`, hardware-loop absolute targets).
#include <gtest/gtest.h>

#include "src/asm/builder.h"
#include "src/asm/disasm.h"

namespace rnnasip::assembler {
namespace {

using namespace isa;

isa::Instr one(void (ProgramBuilder::*f)(Reg, Reg, Reg), Reg rd, Reg a, Reg b) {
  ProgramBuilder pb;
  (pb.*f)(rd, a, b);
  return pb.build().instrs[0];
}

TEST(Disasm, BasicForms) {
  ProgramBuilder b;
  b.addi(kA0, kA1, -4);
  b.lw(kA0, 8, kSp);
  b.sw(kA1, 12, kSp);
  auto p = b.build();
  EXPECT_EQ(disassemble(p.instrs[0]), "addi a0, a1, -4");
  EXPECT_EQ(disassemble(p.instrs[1]), "lw a0, 8(sp)");
  EXPECT_EQ(disassemble(p.instrs[2]), "sw a1, 12(sp)");
}

TEST(Disasm, PostIncrementConvention) {
  ProgramBuilder b;
  b.p_lw(kA0, 4, kA1);
  b.p_sh(kA2, 2, kA3);
  auto p = b.build();
  EXPECT_EQ(disassemble(p.instrs[0]), "p.lw a0, 4(a1!)");
  EXPECT_EQ(disassemble(p.instrs[1]), "p.sh a2, 2(a3!)");
}

TEST(Disasm, BranchAndJumpTargets) {
  ProgramBuilder b(0x1000);
  auto t = b.make_label();
  b.beq(kA0, kA1, t);
  b.nop();
  b.bind(t);
  b.ebreak();
  auto p = b.build();
  EXPECT_EQ(disassemble(p.instrs[0], p.address_of(0)), "beq a0, a1, 0x1008");
}

TEST(Disasm, HardwareLoops) {
  ProgramBuilder b(0x1000);
  auto end = b.make_label();
  b.lp_setupi(0, 32, end);
  b.nop();
  b.nop();
  b.bind(end);
  b.ebreak();
  auto p = b.build();
  EXPECT_EQ(disassemble(p.instrs[0], 0x1000), "lp.setupi 0, 32, 0x100c");
}

TEST(Disasm, RnnExtensions) {
  ProgramBuilder b;
  b.pl_sdotsp_h(0, kA0, kA1, kA2);
  b.pl_sdotsp_h(1, kA0, kA1, kA2);
  b.pl_tanh(kA3, kA4);
  b.pl_sig(kA5, kA6);
  auto p = b.build();
  EXPECT_EQ(disassemble(p.instrs[0]), "pl.sdotsp.h.0 a0, a1, a2");
  EXPECT_EQ(disassemble(p.instrs[1]), "pl.sdotsp.h.1 a0, a1, a2");
  EXPECT_EQ(disassemble(p.instrs[2]), "pl.tanh a3, a4");
  EXPECT_EQ(disassemble(p.instrs[3]), "pl.sig a5, a6");
}

TEST(Disasm, SimdForms) {
  EXPECT_EQ(disassemble(one(&ProgramBuilder::pv_sdotsp_h, kA0, kA1, kA2)),
            "pv.sdotsp.h a0, a1, a2");
  EXPECT_EQ(disassemble(one(&ProgramBuilder::pv_add_b, kT0, kT1, kT2)),
            "pv.add.b t0, t1, t2");
}

TEST(Disasm, ProgramListingHasAddresses) {
  ProgramBuilder b(0x1000);
  b.nop();
  b.ebreak();
  const std::string listing = disassemble(b.build());
  EXPECT_NE(listing.find("00001000:"), std::string::npos);
  EXPECT_NE(listing.find("ebreak"), std::string::npos);
}

TEST(Disasm, EveryOpcodeProducesItsMnemonic) {
  // Property: for every spec-table opcode with benign operands, the
  // disassembly is non-empty and starts with the mnemonic.
  for (const auto& row : isa::all_opcodes()) {
    isa::Instr in;
    in.op = row.op;
    in.rd = (row.format == isa::Format::kHwlImm || row.format == isa::Format::kHwlReg ||
             row.format == isa::Format::kHwlSetup || row.format == isa::Format::kHwlSetupImm)
                ? 0
                : 5;
    in.rs1 = 6;
    in.rs2 = 7;
    in.imm = 4;
    in.imm2 = 4;
    const std::string text = disassemble(in, 0x1000);
    EXPECT_EQ(text.rfind(row.mnemonic, 0), 0u) << text;
    EXPECT_GE(text.size(), std::string(row.mnemonic).size());
  }
}

TEST(Disasm, RegisterNames) {
  EXPECT_EQ(reg_name(0), "zero");
  EXPECT_EQ(reg_name(2), "sp");
  EXPECT_EQ(reg_name(10), "a0");
  EXPECT_EQ(reg_name(31), "t6");
}

}  // namespace
}  // namespace rnnasip::assembler
