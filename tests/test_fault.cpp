// Fault-injection subsystem tests: rate-0 bit-identity, seeded schedule
// determinism, watchdog containment of corrupted control flow, and graceful
// suite degradation under SEU campaigns.
#include <gtest/gtest.h>

#include "src/fault/fault_injector.h"
#include "src/rrm/engine.h"
#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using kernels::OptLevel;
using namespace isa;

constexpr uint32_t kBase = 0x1000;

struct ManualRun {
  iss::Memory mem{1u << 20};
  assembler::Program prog;
  std::unique_ptr<iss::Core> core;

  explicit ManualRun(const std::function<void(ProgramBuilder&)>& emit) {
    ProgramBuilder b(kBase);
    emit(b);
    b.ebreak();
    prog = b.build();
    core = std::make_unique<iss::Core>(&mem);
    core->load_program(prog);
    core->reset(prog.base);
  }
};

// A deterministic ~3000-instruction busy loop that stores its result.
void emit_busy_loop(ProgramBuilder& b) {
  b.li(kT0, 1000);
  b.li(kA0, 0);
  auto loop = b.make_label();
  b.bind(loop);
  b.addi(kA0, kA0, 3);
  b.addi(kT0, kT0, -1);
  b.bne(kT0, kZero, loop);
  b.li(kA1, 0x8000);
  b.sw(kA0, 0, kA1);
}

TEST(FaultInjector, ArmedRateZeroIsBitIdentical) {
  ManualRun plain(emit_busy_loop);
  const auto ref = plain.core->run(1'000'000);
  ASSERT_EQ(ref.exit, iss::RunResult::Exit::kEbreak);

  ManualRun armed(emit_busy_loop);
  fault::FaultSpec spec;  // all rates zero
  fault::FaultInjector injector(spec);
  injector.arm(armed.core.get(), &armed.mem);
  const auto res = armed.core->run(1'000'000);

  EXPECT_EQ(res.exit, ref.exit);
  EXPECT_EQ(res.instrs, ref.instrs);
  EXPECT_EQ(res.cycles, ref.cycles);
  for (int r = 0; r < 32; ++r) EXPECT_EQ(armed.core->reg(r), plain.core->reg(r)) << r;
  EXPECT_EQ(armed.mem.load32(0x8000), plain.mem.load32(0x8000));
  EXPECT_EQ(injector.flips(), 0u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  fault::FaultSpec spec;
  spec.seed = 0xF00D;
  spec.rate_of(fault::Target::kTcdm) = 0.02;
  spec.tcdm = {0x8000, 0x8400};  // scratch area the program never reads

  std::string first_schedule;
  uint64_t first_flips = 0;
  for (int round = 0; round < 2; ++round) {
    ManualRun run(emit_busy_loop);
    fault::FaultInjector injector(spec);
    injector.arm(run.core.get(), &run.mem);
    const auto res = run.core->run(1'000'000);
    ASSERT_EQ(res.exit, iss::RunResult::Exit::kEbreak);  // flips miss the loop
    for (const auto& ev : injector.events()) {
      EXPECT_GE(ev.where, spec.tcdm.lo);
      EXPECT_LT(ev.where, spec.tcdm.hi);
      EXPECT_LT(ev.bit, 8u);
    }
    if (round == 0) {
      first_schedule = injector.schedule_string();
      first_flips = injector.flips();
      EXPECT_GT(first_flips, 0u);
    } else {
      EXPECT_EQ(injector.schedule_string(), first_schedule);
      EXPECT_EQ(injector.flips(), first_flips);
    }
  }
}

TEST(FaultInjector, InstrFlipsStayInsideTextRange) {
  fault::FaultSpec spec;
  spec.seed = 9;
  spec.rate_of(fault::Target::kInstr) = 0.05;

  ManualRun run(emit_busy_loop);
  spec.text = {run.prog.base, run.prog.base + static_cast<uint32_t>(run.prog.size_bytes())};
  fault::FaultInjector injector(spec);
  injector.arm(run.core.get(), &run.mem);
  iss::RunLimits limits;
  limits.max_cycles = 100'000;  // a corrupted loop must still terminate
  const auto res = run.core->run(limits);
  (void)res;  // any exit is fine — the program is being corrupted

  ASSERT_GT(injector.flips(), 0u);
  for (const auto& ev : injector.events()) {
    EXPECT_GE(ev.where, spec.text.lo);
    EXPECT_LT(ev.where, spec.text.hi);
    EXPECT_EQ(ev.where % 2, 0u);
    EXPECT_LT(ev.bit, 16u);
  }
}

TEST(FaultInjector, CorruptedLoopDiesByWatchdogNotHang) {
  // li a0,3; L: addi a0,a0,-1; bne a0,zero,L. Flipping imm bit 0 of the addi
  // turns the decrement into -2, so a0 steps 3,1,-1,... and never hits zero:
  // exactly the corrupted-branch scenario the cycle watchdog exists for.
  uint32_t addi_pos = 0;
  ManualRun run([&](ProgramBuilder& b) {
    b.li(kA0, 3);
    auto loop = b.make_label();
    addi_pos = static_cast<uint32_t>(b.position());
    b.bind(loop);
    b.addi(kA0, kA0, -1);
    b.bne(kA0, kZero, loop);
  });

  // Sanity: the pristine program terminates.
  const auto clean = run.core->run(1000);
  ASSERT_EQ(clean.exit, iss::RunResult::Exit::kEbreak);

  // Flip instruction bit 20 (imm[0] of the I-type addi) in memory.
  const uint32_t addi_addr = kBase + 4 * addi_pos;
  run.mem.flip_bit(addi_addr + 2, 4);
  run.core->invalidate_decode_cache();
  run.core->reset(run.prog.base);

  iss::RunLimits limits;
  limits.max_cycles = 5000;
  const auto res = run.core->run(limits);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kWatchdog);
  EXPECT_EQ(res.trap.cause, iss::TrapCause::kWatchdog);
  EXPECT_GE(res.cycles, limits.max_cycles);
  EXPECT_FALSE(res.ok());
}

TEST(FaultSuite, RateZeroCampaignMatchesFaultFreeAtEveryLevel) {
  rrm::Engine eng;
  for (OptLevel level : kernels::kAllOptLevels) {
    rrm::Request plain;
    plain.network = "naparstek17";
    plain.level = level;
    plain.timesteps = 2;
    const auto ref = eng.run(plain).result;
    ASSERT_TRUE(ref.verified) << kernels::opt_level_name(level);

    rrm::Request campaign = plain;
    campaign.watchdog_cycles = rrm::kDefaultCampaignWatchdog;  // rates stay 0
    const auto res = eng.run(campaign).result;
    EXPECT_TRUE(res.verified);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.cycles, ref.cycles) << kernels::opt_level_name(level);
    EXPECT_EQ(res.instrs, ref.instrs);
    EXPECT_EQ(res.faults_injected, 0u);
    EXPECT_EQ(res.decision_flip_rate, 0.0);
  }
}

TEST(FaultSuite, SameSeedReproducesNetworkCampaign) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "naparstek17";
  req.level = OptLevel::kXpulpSimd;
  req.timesteps = 3;
  req.fault.seed = 77;
  req.fault.rate_of(fault::Target::kTcdm) = 5e-4;
  req.fault.rate_of(fault::Target::kRegFile) = 1e-4;
  req.watchdog_cycles = 2'000'000;

  const auto a = eng.run(req).result;
  const auto b = eng.run(req).result;
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.decision_flip_rate, b.decision_flip_rate);
  EXPECT_EQ(a.trap.cause, b.trap.cause);
}

TEST(FaultSuite, WatchdogDegradesEveryNetworkYetSuiteCompletes) {
  rrm::Engine eng;
  rrm::Request proto;
  proto.timesteps = 1;
  proto.watchdog_cycles = 200;  // far below any network's forward pass
  const auto s = eng.run_suite(OptLevel::kInputTiling, proto);
  ASSERT_EQ(s.nets.size(), 10u);
  EXPECT_EQ(s.nets_completed, 0);
  EXPECT_EQ(s.nets_degraded, 10);
  for (const auto& n : s.nets) {
    EXPECT_FALSE(n.completed) << n.name;
    EXPECT_TRUE(n.degraded());
    EXPECT_EQ(n.trap.cause, iss::TrapCause::kWatchdog) << n.name;
    EXPECT_EQ(n.steps_completed, 0) << n.name;
    EXPECT_EQ(n.steps_attempted, 1) << n.name;
  }
}

TEST(FaultSuite, InstrCampaignRunsAllTenNetworks) {
  rrm::Engine eng;
  rrm::Request proto;
  proto.timesteps = 1;
  proto.fault.seed = 42;
  proto.fault.rate_of(fault::Target::kInstr) = 2e-3;
  proto.watchdog_cycles = 2'000'000;

  const auto a = eng.run_suite(OptLevel::kXpulpSimd, proto);
  ASSERT_EQ(a.nets.size(), 10u);  // no abort, every network reported
  EXPECT_GT(a.faults_injected, 0u);
  int degraded = 0;
  for (const auto& n : a.nets) {
    EXPECT_EQ(n.steps_attempted, 1) << n.name;
    degraded += n.degraded() ? 1 : 0;
  }
  EXPECT_EQ(degraded, a.nets_degraded);

  // Suite-level determinism: the same seed yields the same campaign.
  const auto b = eng.run_suite(OptLevel::kXpulpSimd, proto);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.nets_degraded, b.nets_degraded);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

}  // namespace
}  // namespace rnnasip
