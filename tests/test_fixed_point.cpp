// Unit and property tests for the Q-format fixed-point substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/fixed_point.h"
#include "src/common/rng.h"

namespace rnnasip {
namespace {

TEST(QFormat, Q312Properties) {
  EXPECT_EQ(q3_12.width(), 16);
  EXPECT_DOUBLE_EQ(q3_12.scale(), 4096.0);
  EXPECT_NEAR(q3_12.max_value(), 7.999755859375, 1e-12);
  EXPECT_DOUBLE_EQ(q3_12.min_value(), -8.0);
  EXPECT_DOUBLE_EQ(q3_12.resolution(), 1.0 / 4096.0);
  EXPECT_EQ(q3_12.to_string(), "Q3.12");
}

TEST(Quantize, ExactValues) {
  EXPECT_EQ(quantize(0.0), 0);
  EXPECT_EQ(quantize(1.0), 4096);
  EXPECT_EQ(quantize(-1.0), -4096);
  EXPECT_EQ(quantize(0.5), 2048);
  EXPECT_EQ(quantize(1.0 / 4096.0), 1);
}

TEST(Quantize, SaturatesAtFormatBounds) {
  EXPECT_EQ(quantize(100.0), 32767);
  EXPECT_EQ(quantize(-100.0), -32768);
  EXPECT_EQ(quantize(8.0), 32767);  // +8.0 is just out of range
  EXPECT_EQ(quantize(-8.0), -32768);
}

TEST(Quantize, RoundsToNearest) {
  // 0.6/4096 rounds to 1 LSB, 0.4/4096 rounds to 0.
  EXPECT_EQ(quantize(0.6 / 4096.0), 1);
  EXPECT_EQ(quantize(0.4 / 4096.0), 0);
  EXPECT_EQ(quantize(-0.6 / 4096.0), -1);
}

TEST(Quantize, RoundTripErrorBounded) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_in(-7.9, 7.9);
    const double back = dequantize(quantize(x));
    EXPECT_NEAR(back, x, 0.5 / 4096.0) << "x=" << x;
  }
}

TEST(Requantize, ShiftsAndSaturates) {
  EXPECT_EQ(requantize(int64_t{4096} * 4096, 12), 4096);  // 1.0*1.0 = 1.0
  EXPECT_EQ(requantize(int64_t{1} << 40, 12, 16), 32767);
  EXPECT_EQ(requantize(-(int64_t{1} << 40), 12, 16), -32768);
  // Arithmetic shift truncates toward -inf.
  EXPECT_EQ(requantize(-1, 12, 16), -1);
}

TEST(Requantize, MatchesScalarMultiply) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto a = rng.next_i16();
    const auto b = rng.next_i16();
    const double ref = dequantize(a) * dequantize(b);
    const double got = dequantize(fx_mul_q(a, b));
    // One LSB of truncation plus saturation for out-of-range products.
    if (ref < q3_12.max_value() && ref > q3_12.min_value()) {
      EXPECT_NEAR(got, ref, 1.5 / 4096.0) << "a=" << int{a} << " b=" << int{b};
    }
  }
}

TEST(SatAdd16, Saturates) {
  EXPECT_EQ(sat_add16(32767, 1), 32767);
  EXPECT_EQ(sat_add16(-32768, -1), -32768);
  EXPECT_EQ(sat_add16(1000, -3000), -2000);
}

TEST(QFormatParam, WidthAndScaleConsistent) {
  for (int ib = 0; ib <= 7; ++ib) {
    for (int fb = 4; fb <= 24; fb += 4) {
      const QFormat f{ib, fb};
      EXPECT_EQ(f.width(), 1 + ib + fb);
      EXPECT_DOUBLE_EQ(f.max_value() + f.resolution(), std::ldexp(1.0, ib));
    }
  }
}

}  // namespace
}  // namespace rnnasip
