// Implementation-model tests: area anchors, power calibration against the
// paper's Sec. IV points, and the derived throughput/efficiency metrics.
#include <gtest/gtest.h>

#include "src/impl_model/impl_model.h"
#include "src/rrm/engine.h"

namespace rnnasip::impl_model {
namespace {

using kernels::OptLevel;

TEST(AreaModel, MatchesPaperAnchors) {
  AreaModel area;
  EXPECT_NEAR(area.extension_kge(), 2.3, 1e-9);
  // Paper: 3.4 % of the core area.
  EXPECT_NEAR(area.overhead_fraction(), 0.034, 0.002);
  EXPECT_GT(area.extended_core_um2(), 10000.0);  // ~13.5 kum2 in 22FDX
  EXPECT_LT(area.extended_core_um2(), 20000.0);
}

class CalibratedModel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rrm::Engine eng;
    rrm::Request proto;
    proto.verify = false;
    base_ = new rrm::SuiteResult(eng.run_suite(OptLevel::kBaseline, proto));
    ext_ = new rrm::SuiteResult(eng.run_suite(OptLevel::kInputTiling, proto));
  }
  static void TearDownTestSuite() {
    delete base_;
    delete ext_;
    base_ = ext_ = nullptr;
  }
  static rrm::SuiteResult* base_;
  static rrm::SuiteResult* ext_;
};

rrm::SuiteResult* CalibratedModel::base_ = nullptr;
rrm::SuiteResult* CalibratedModel::ext_ = nullptr;

TEST_F(CalibratedModel, ReproducesCalibrationPoints) {
  const auto a_base = activity_from_stats(base_->total);
  const auto a_ext = activity_from_stats(ext_->total);
  const auto m = PowerModel::calibrate(a_base, a_ext);

  // Baseline point is exact by construction.
  EXPECT_NEAR(m.power_mw(a_base), 1.73, 1e-6);
  // Extended point follows from the published component deltas; the paper's
  // total (2.61 mW) includes a small residual our four components do not
  // carry, so allow a ~10% band.
  EXPECT_NEAR(m.power_mw(a_ext), 2.61, 0.26);
  EXPECT_GT(m.power_mw(a_ext), m.power_mw(a_base) * 1.3);
}

TEST_F(CalibratedModel, ComponentDeltasMatchSec4) {
  const auto a_base = activity_from_stats(base_->total);
  const auto a_ext = activity_from_stats(ext_->total);
  const auto m = PowerModel::calibrate(a_base, a_ext);
  const auto pb = m.breakdown_mw(a_base);
  const auto pe = m.breakdown_mw(a_ext);
  EXPECT_NEAR(pe.mac - pb.mac, 0.57, 1e-6);
  EXPECT_NEAR(pe.gpr - pb.gpr, 0.16, 1e-6);
  EXPECT_NEAR(pe.lsu - pb.lsu, 0.05, 1e-6);
  EXPECT_NEAR(pe.ext_dec - pb.ext_dec, 0.005, 1e-6);
}

TEST_F(CalibratedModel, ThroughputAndEfficiencyBands) {
  const auto a_base = activity_from_stats(base_->total);
  const auto a_ext = activity_from_stats(ext_->total);
  const auto m = PowerModel::calibrate(a_base, a_ext);

  const double mmacs_base = mmac_per_s(base_->total_macs, base_->total_cycles);
  const double mmacs_ext = mmac_per_s(ext_->total_macs, ext_->total_cycles);
  // Extended core lands in the paper's half-GMAC band (566 MMAC/s).
  EXPECT_GT(mmacs_ext, 450.0);
  EXPECT_LT(mmacs_ext, 700.0);
  // Throughput improvement ~15x.
  EXPECT_GT(mmacs_ext / mmacs_base, 11.0);
  EXPECT_LT(mmacs_ext / mmacs_base, 19.0);

  const double eff_base = gmac_per_s_per_w(mmacs_base, m.power_mw(a_base));
  const double eff_ext = gmac_per_s_per_w(mmacs_ext, m.power_mw(a_ext));
  // Paper: 218 GMAC/s/W, ~10x over baseline.
  EXPECT_GT(eff_ext, 150.0);
  EXPECT_LT(eff_ext, 300.0);
  EXPECT_GT(eff_ext / eff_base, 7.0);
  EXPECT_LT(eff_ext / eff_base, 14.0);
}

TEST(AreaModel, ActUnitScalesWithLutDepth) {
  AreaModel area;
  // The shipped M = 32 reproduces the paper's 2.3 kGE total exactly.
  EXPECT_NEAR(area.extension_kge_with_intervals(32), 2.3, 1e-9);
  EXPECT_NEAR(area.act_unit_kge(32), 1.7, 1e-9);
  // Doubling the LUT adds exactly one more LUT quantum.
  EXPECT_NEAR(area.act_unit_kge(64) - area.act_unit_kge(32), 1.0, 1e-9);
  // The datapath is the floor.
  EXPECT_GT(area.act_unit_kge(1), 0.7);
}

TEST(Dvfs, AnchorReproducesExactly) {
  DvfsModel m;
  EXPECT_DOUBLE_EQ(m.freq_at(0.65), 380e6);
  EXPECT_DOUBLE_EQ(m.scale_power_mw(2.5, 0.65), 2.5);
}

TEST(Dvfs, FrequencyScalesWithOverdrive) {
  DvfsModel m;
  EXPECT_NEAR(m.freq_at(0.50), 380e6 * 0.15 / 0.30, 1.0);
  EXPECT_NEAR(m.freq_at(0.95), 380e6 * 2.0, 1.0);
  EXPECT_EQ(m.freq_at(0.36), 0.0);  // below usable overdrive
}

TEST(Dvfs, LowerVoltageImprovesEnergyEfficiency) {
  DvfsModel m;
  // Efficiency ~ f / P: at lower V, P drops faster (V^2 f) than f.
  const double eff_065 = m.freq_at(0.65) / m.scale_power_mw(2.5, 0.65);
  const double eff_055 = m.freq_at(0.55) / m.scale_power_mw(2.5, 0.55);
  const double eff_080 = m.freq_at(0.80) / m.scale_power_mw(2.5, 0.80);
  EXPECT_GT(eff_055, eff_065);
  EXPECT_LT(eff_080, eff_065);
}

TEST(Dvfs, LeakageLimitsLowVoltageGains) {
  DvfsModel m;
  // With a heavy leakage share, scaling down helps much less.
  const double light = m.scale_power_mw(2.5, 0.50, 0.0);
  const double heavy = m.scale_power_mw(2.5, 0.50, 0.5);
  EXPECT_LT(light, heavy);
}

TEST(Metrics, UnitConversions) {
  // 380e6 cycles at 1 MAC/cycle = 380 MMAC/s.
  EXPECT_NEAR(mmac_per_s(380'000'000ull, 380'000'000ull), 380.0, 1e-6);
  // 380 MMAC/s at 1 mW = 380 GMAC/s/W.
  EXPECT_NEAR(gmac_per_s_per_w(380.0, 1.0), 380.0, 1e-9);
  // 380e6 cycles at 380 MHz = 1 s; 1 mW for 1 s = 1000 uJ.
  EXPECT_NEAR(energy_per_run_uj(380'000'000ull, 1.0), 1000.0, 1e-6);
}

TEST(Activity, RatesAreSane) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "wang18";
  req.level = OptLevel::kInputTiling;
  req.verify = false;
  const auto a = activity_from_stats(eng.run(req).result.stats);
  EXPECT_GT(a.mac_rate, 0.5);   // pl.sdotsp dominates
  EXPECT_LE(a.mac_rate, 1.0);
  EXPECT_GT(a.lsu_rate, 0.5);   // folded loads keep the LSU busy
  EXPECT_GT(a.gpr_rate, 1.0);   // packed operands double-pump the GPR
  EXPECT_EQ(a.act_rate, 0.0);   // wang18 is ReLU-only
}

}  // namespace
}  // namespace rnnasip::impl_model
