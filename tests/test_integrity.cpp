// Integrity-and-recovery contracts (src/integrity + the serve layer):
//   - the host fold mirrors the device fold and matches the golden oracle
//     at every optimization level (zero false positives),
//   - a hand-placed SEU is flagged at exactly the boundary it corrupts,
//     and checkpoint rollback recovers the fault-free output,
//   - checkpoints round-trip bit-exactly at every boundary of every level,
//     including resume on a different core (preemption migration),
//   - instrumented programs serve bit-identical outputs at bounded cycle
//     overhead,
//   - segmented scheduling under a deterministic SEU campaign serves zero
//     non-flagged corrupted responses, and an EDF-preempted request
//     resumes bit-identically.
#include <gtest/gtest.h>

#include "src/integrity/integrity.h"
#include "src/serve/cluster.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

constexpr uint64_t kSeed = 0x52414D;

/// One instrumented network on a private core/memory pair.
struct Harness {
  iss::Memory mem{8u << 20};
  iss::Core core{&mem};
  exec::IssBackend backend{&core};
  rrm::RrmNetwork net;
  kernels::BuiltNetwork built;

  Harness(const std::string& name, OptLevel level)
      : net(rrm::find_network(name), kSeed) {
    built = net.build(&mem, level, core.tanh_table(), core.sig_table(),
                      /*max_tile=*/8, /*param_base=*/0, /*integrity=*/true);
    core.load_program(built.program);
  }

  integrity::GoldenChecks golden(std::span<const int16_t> input) const {
    return integrity::golden_checks(net, core.tanh_table(), core.sig_table(), input);
  }
};

void drive_to_done(integrity::CheckedRun& run) {
  integrity::CheckedRun::State st;
  while ((st = run.step()) == integrity::CheckedRun::State::kBoundary) {
  }
  ASSERT_EQ(st, integrity::CheckedRun::State::kDone) << run.last_result().trap_message;
}

const std::vector<std::string> kNets = {"ahmed19", "nasir18", "naparstek17"};

}  // namespace

TEST(IntegrityFold, DeviceAndHostFoldsMatchGoldenAtEveryLevel) {
  for (const auto& name : kNets) {
    for (OptLevel level : kernels::kAllOptLevels) {
      Harness h(name, level);
      ASSERT_FALSE(h.built.checks.empty());
      const auto input = h.net.make_input(0);
      auto golden = h.golden(input);
      ASSERT_EQ(golden.folds.size(), h.built.checks.size());

      integrity::CheckedRun run(&h.backend, &h.mem, &h.built, {});
      run.set_golden(golden);
      run.begin(input);
      drive_to_done(run);

      // Boundaries all verified plus the post-ebreak re-fold; no mismatch.
      EXPECT_EQ(run.counters().checks, h.built.checks.size() + 1)
          << name << " " << kernels::opt_level_name(level);
      EXPECT_EQ(run.counters().detections, 0u);
      EXPECT_EQ(run.counters().rollbacks, 0u);
      EXPECT_EQ(run.outputs(), golden.outputs.back());
    }
  }
}

TEST(IntegrityDetect, HandPlacedSeuIsFlaggedAtTheCorruptingBoundary) {
  // Corrupt layer 1's *input* (= layer 0's verified output) right after
  // boundary 0 passes: the detection must land at boundary 1, not 0.
  Harness h("nasir18", OptLevel::kInputTiling);
  ASSERT_GE(h.built.checks.size(), 2u);
  const auto input = h.net.make_input(0);

  integrity::CheckedRunConfig cfg;
  cfg.rollback = false;  // surface the detection instead of recovering
  integrity::CheckedRun run(&h.backend, &h.mem, &h.built, cfg);
  run.set_golden(h.golden(input));
  run.begin(input);
  ASSERT_EQ(run.step(), integrity::CheckedRun::State::kBoundary);

  // Flip a high bit of the first element of the layer-0 output buffer —
  // enough to swing downstream decisions (e.g. an argmax pick).
  h.mem.flip_bit(h.built.checks[0].out_addr + 1, 6);

  EXPECT_EQ(run.step(), integrity::CheckedRun::State::kFailed);
  EXPECT_TRUE(run.integrity_failed());
  EXPECT_EQ(run.first_detection_at(), 1);
  EXPECT_EQ(run.last_result().trap.cause, iss::TrapCause::kIntegrityMismatch);
  EXPECT_EQ(run.counters().detections, 1u);
}

TEST(IntegrityDetect, ReadoutWindowFlipIsCaughtAndRolledBack) {
  // Flip the served output buffer *after* the final boundary's fold
  // passed: only the post-ebreak re-fold can catch this, and rollback to
  // the last checkpoint (whose TCDM window holds the clean bytes) must
  // recover the fault-free output.
  Harness h("ahmed19", OptLevel::kXpulpSimd);
  const auto input = h.net.make_input(0);
  const auto golden = h.golden(input);

  integrity::CheckedRun run(&h.backend, &h.mem, &h.built, {});
  run.set_golden(golden);
  run.begin(input);
  const int boundaries = static_cast<int>(h.built.checks.size());
  for (int b = 0; b < boundaries; ++b) {
    ASSERT_EQ(run.step(), integrity::CheckedRun::State::kBoundary) << b;
  }
  // All layer folds verified; corrupt the output buffer before readout.
  h.mem.flip_bit(h.built.output_addr, 3);

  ASSERT_EQ(run.step(), integrity::CheckedRun::State::kDone);
  EXPECT_EQ(run.counters().detections, 1u);
  EXPECT_EQ(run.counters().rollbacks, 1u);
  EXPECT_GT(run.counters().rollback_cycles, 0u);
  EXPECT_EQ(run.outputs(), golden.outputs.back());
}

TEST(IntegrityCheckpoint, RoundTripsBitExactlyAtEveryBoundaryOfEveryLevel) {
  for (OptLevel level : kernels::kAllOptLevels) {
    Harness a("nasir18", level);
    const auto input = a.net.make_input(1);
    const auto golden = a.golden(input);

    integrity::CheckedRun run(&a.backend, &a.mem, &a.built, {});
    run.set_golden(golden);
    run.begin(input);

    int boundary = 0;
    while (run.step() == integrity::CheckedRun::State::kBoundary) {
      ++boundary;
      const integrity::Checkpoint cp = run.checkpoint();
      const uint64_t before = cp.digest();

      // Restore onto a *different* core/memory (the preemption-migration
      // path) and re-snapshot: the state must round-trip bit-exactly.
      Harness b("nasir18", level);
      integrity::restore_checkpoint(&b.backend, &b.mem, cp);
      const integrity::Checkpoint back = integrity::take_checkpoint(
          b.backend, b.mem, cp.data_lo, static_cast<uint32_t>(cp.data.size()),
          cp.next_check);
      ASSERT_EQ(back.digest(), before)
          << kernels::opt_level_name(level) << " boundary " << boundary;

      // And the migrated run must finish with the golden output.
      integrity::CheckedRun resumed(&b.backend, &b.mem, &b.built, {});
      resumed.set_golden(golden);
      resumed.begin(input);  // state is then replaced by the checkpoint
      resumed.resume(&b.backend, &b.mem, cp);
      drive_to_done(resumed);
      ASSERT_EQ(resumed.outputs(), golden.outputs.back());
    }
    EXPECT_EQ(run.outputs(), golden.outputs.back());
    EXPECT_GT(boundary, 0);
  }
}

TEST(IntegrityServing, InstrumentedClusterServesIdenticalOutputsUnderFivePercent) {
  serve::ClusterConfig plain_cfg;
  plain_cfg.cores = 1;
  plain_cfg.level = OptLevel::kInputTiling;
  serve::ClusterConfig integ_cfg = plain_cfg;
  integ_cfg.integrity = true;
  const std::vector<std::string> nets = {"ahmed19", "eisen19", "nasir18"};
  serve::Cluster plain(plain_cfg, nets);
  serve::Cluster integ(integ_cfg, nets);

  uint64_t plain_total = 0, integ_total = 0;
  for (const auto& name : nets) {
    const auto input = plain.network(name).make_input(0);
    const auto a = plain.run_single(0, name, input);
    const auto b = integ.run_single(0, name, input);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.outputs, b.outputs) << name;

    // Per-net sanity ceiling: the fold reads each output halfword once
    // (1 cycle/halfword on the single-issue core), which stays below 10%
    // even for the sub-1k-cycle nets.
    const uint64_t pc = plain.estimated_single_cycles(name);
    const uint64_t ic = integ.estimated_single_cycles(name);
    EXPECT_GE(ic, pc) << name;
    EXPECT_LT(static_cast<double>(ic) / static_cast<double>(pc) - 1.0, 0.10) << name;
    plain_total += pc;
    integ_total += ic;
  }
  // Acceptance bound: ABFT fold + yield overhead < 5% cycles at level e
  // over the serving mix.
  EXPECT_LT(static_cast<double>(integ_total) / static_cast<double>(plain_total) - 1.0,
            0.05);
}

TEST(IntegrityServing, CampaignWithDetectionServesNoCorruptedResponse) {
  serve::ClusterConfig ccfg;
  ccfg.cores = 2;
  ccfg.level = OptLevel::kInputTiling;
  ccfg.integrity = true;
  const std::vector<std::string> nets = {"ahmed19", "eisen19", "nasir18"};
  serve::Cluster cluster(ccfg, nets);

  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 32;
  wc.mean_interarrival_cycles = 3000;
  wc.seed = 0x5EED;
  const auto workload = make_poisson_workload(cluster, wc);

  serve::SchedulerConfig scfg;
  scfg.policy = serve::Policy::kFifo;
  scfg.fault.seed = 0xF00D;
  scfg.fault.rate_of(fault::Target::kTcdm) = 3e-4;  // the PR 5 "high" point
  scfg.integrity.detect = true;
  serve::Scheduler sched(&cluster, scfg);
  const auto r = sched.run(workload);

  EXPECT_GT(r.integrity_checks, 0u);
  EXPECT_GT(r.integrity_detections, 0u);
  EXPECT_GT(r.rollbacks, 0u);
  // The zero-silent-corruption contract: every response that *was* served
  // is the bit-exact golden output; corrupted attempts were flagged and
  // either recovered or escalated (failed list), never served silently.
  for (const auto& c : r.completions) {
    const auto golden = integrity::golden_checks(
        cluster.network(c.network), cluster.tanh_table(), cluster.sig_table(),
        workload.jobs[c.id].input);
    ASSERT_EQ(c.outputs, golden.outputs.back()) << "request " << c.id;
    EXPECT_EQ(c.done - c.arrival, c.wait_cycles + c.exec_cycles);
  }
  // Determinism: the same configuration reproduces the same record.
  serve::Scheduler again(&cluster, scfg);
  const auto r2 = again.run(workload);
  EXPECT_EQ(serve_result_to_json(r, 500.0).dump_pretty(),
            serve_result_to_json(r2, 500.0).dump_pretty());
}

TEST(IntegrityServing, PreemptedRequestResumesBitIdentically) {
  serve::ClusterConfig ccfg;
  ccfg.cores = 1;  // force contention: the EDF challenger must preempt
  ccfg.level = OptLevel::kInputTiling;
  ccfg.integrity = true;
  const std::vector<std::string> nets = {"ahmed19", "nasir18"};
  serve::Cluster cluster(ccfg, nets);

  // Job 0: long, deadline-free. Job 1: arrives mid-execution with a real
  // (and comfortably feasible) deadline — EDF must suspend job 0 at its
  // next layer boundary and serve job 1 first.
  serve::Workload w;
  serve::Job j0;
  j0.id = 0;
  j0.network = "nasir18";
  j0.arrival = 0;
  j0.input = cluster.network("nasir18").make_input(0);
  serve::Job j1;
  j1.id = 1;
  j1.network = "ahmed19";
  j1.arrival = 1;
  j1.deadline = 500'000;
  j1.input = cluster.network("ahmed19").make_input(1);
  w.jobs = {std::move(j0), std::move(j1)};

  serve::SchedulerConfig scfg;
  scfg.policy = serve::Policy::kDeadline;
  scfg.integrity.detect = true;
  scfg.integrity.preemption = true;
  serve::Scheduler sched(&cluster, scfg);
  const auto r = sched.run(w);

  ASSERT_EQ(r.completions.size(), 2u);
  EXPECT_GE(r.preemptions, 1u);
  EXPECT_GT(r.preempted_cycles, 0u);
  const auto& victim = r.completions[0];
  EXPECT_GE(victim.preemptions, 1);
  // Job 1 finishes before the suspended job 0 and meets its deadline.
  EXPECT_LT(r.completions[1].done, victim.done);
  EXPECT_TRUE(r.completions[1].met_deadline());
  for (const auto& c : r.completions) {
    const auto golden = integrity::golden_checks(
        cluster.network(c.network), cluster.tanh_table(), cluster.sig_table(),
        w.jobs[c.id].input);
    EXPECT_EQ(c.outputs, golden.outputs.back()) << "request " << c.id;
    EXPECT_EQ(c.done - c.arrival, c.wait_cycles + c.exec_cycles);
  }
}

TEST(IntegrityServing, FaultEventJsonCarriesTruncationMarker) {
  serve::ServeResult r;
  r.cores = 1;
  r.core_busy = {0};
  const auto dump_has = [](const serve::ServeResult& res, const char* needle) {
    return serve_result_to_json(res, 500.0).dump_pretty().find(needle) !=
           std::string::npos;
  };
  EXPECT_TRUE(dump_has(r, "\"fault_events_truncated\": false"));
  for (int i = 0; i < 20; ++i) {
    r.fault_log.push_back({0, static_cast<uint64_t>(i), fault::FaultEvent{}});
    ++r.fault_events_total;
  }
  EXPECT_TRUE(dump_has(r, "\"fault_events_truncated\": true"));
  EXPECT_TRUE(dump_has(r, "\"fault_events_total\": 20"));
  // The in-memory retention cap is a separate marker from the JSON prefix
  // bound: an uncapped log reports fault_log_truncated false.
  EXPECT_TRUE(dump_has(r, "\"fault_log_truncated\": false"));
}
