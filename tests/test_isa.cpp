// Encoder/decoder tests: directed encodings plus a table-driven round-trip
// property suite over every opcode in the spec table with randomized
// operands, and an RV32C expansion suite.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/isa/isa.h"

namespace rnnasip::isa {
namespace {

Instr mk(Opcode op, uint8_t rd = 0, uint8_t rs1 = 0, uint8_t rs2 = 0, int32_t imm = 0,
         int32_t imm2 = 0) {
  Instr in;
  in.op = op;
  in.rd = rd;
  in.rs1 = rs1;
  in.rs2 = rs2;
  in.imm = imm;
  in.imm2 = imm2;
  return in;
}

TEST(Encode, MatchesKnownRiscvWords) {
  // Cross-checked against the RISC-V spec examples / GNU as output.
  EXPECT_EQ(encode(mk(Opcode::kAddi, 1, 2, 0, 3)), 0x00310093u);   // addi ra,sp,3
  EXPECT_EQ(encode(mk(Opcode::kAdd, 3, 1, 2)), 0x002081B3u);       // add gp,ra,sp
  EXPECT_EQ(encode(mk(Opcode::kLw, 10, 2, 0, 16)), 0x01012503u);   // lw a0,16(sp)
  EXPECT_EQ(encode(mk(Opcode::kSw, 0, 2, 10, 16)), 0x00A12823u);   // sw a0,16(sp)
  EXPECT_EQ(encode(mk(Opcode::kLui, 5, 0, 0, 0x12345)), 0x123452B7u);
  EXPECT_EQ(encode(mk(Opcode::kEcall)), 0x00000073u);
  EXPECT_EQ(encode(mk(Opcode::kEbreak)), 0x00100073u);
  EXPECT_EQ(encode(mk(Opcode::kMul, 10, 11, 12)), 0x02C58533u);    // mul a0,a1,a2
}

TEST(Decode, RejectsIllegalWords) {
  EXPECT_FALSE(decode(0x00000000u).has_value());
  EXPECT_FALSE(decode(0xFFFFFFFFu).has_value());
  // Major opcode 0x33 with unused funct7.
  EXPECT_FALSE(decode(0x7E000033u).has_value());
}

TEST(Decode, BranchOffsetsSignExtend) {
  // beq x1, x2, -8
  const auto word = encode(mk(Opcode::kBeq, 0, 1, 2, -8));
  const auto in = decode(word);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kBeq);
  EXPECT_EQ(in->imm, -8);
}

TEST(Encode, RangeChecksThrow) {
  EXPECT_THROW(encode(mk(Opcode::kAddi, 1, 2, 0, 4096)), std::runtime_error);
  EXPECT_THROW(encode(mk(Opcode::kBeq, 0, 1, 2, 3)), std::runtime_error);  // odd
  EXPECT_THROW(encode(mk(Opcode::kJal, 1, 0, 0, 1 << 21)), std::runtime_error);
  EXPECT_THROW(encode(mk(Opcode::kLpSetupi, 0, 0, 0, 5000, 8)), std::runtime_error);
  EXPECT_THROW(encode(mk(Opcode::kLpSetupi, 0, 0, 0, 32, 64)), std::runtime_error);
}

// ---- property suite: encode(decode(w)) == w for every opcode ----

class RoundTrip : public ::testing::TestWithParam<OpcodeInfo> {};

Instr random_operands(const OpcodeInfo& s, Rng& rng) {
  Instr in;
  in.op = s.op;
  auto reg = [&] { return static_cast<uint8_t>(rng.next_below(32)); };
  switch (s.format) {
    case Format::kR:
    case Format::kSimdR:
      in.rd = reg(), in.rs1 = reg(), in.rs2 = reg();
      break;
    case Format::kI:
      in.rd = reg(), in.rs1 = reg();
      in.imm = static_cast<int32_t>(rng.next_below(4096)) - 2048;
      break;
    case Format::kShift:
    case Format::kSimdImm:
      in.rd = reg(), in.rs1 = reg();
      in.imm = static_cast<int32_t>(rng.next_below(32));
      break;
    case Format::kClip:
      in.rd = reg(), in.rs1 = reg();
      in.imm = 1 + static_cast<int32_t>(rng.next_below(31));
      break;
    case Format::kS:
      in.rs1 = reg(), in.rs2 = reg();
      in.imm = static_cast<int32_t>(rng.next_below(4096)) - 2048;
      break;
    case Format::kB:
      in.rs1 = reg(), in.rs2 = reg();
      in.imm = (static_cast<int32_t>(rng.next_below(4096)) - 2048) * 2;
      break;
    case Format::kU:
      in.rd = reg();
      in.imm = static_cast<int32_t>(rng.next_below(1 << 20));
      break;
    case Format::kJ:
      in.rd = reg();
      in.imm = (static_cast<int32_t>(rng.next_below(1 << 20)) - (1 << 19)) * 2;
      break;
    case Format::kSys:
      break;
    case Format::kCsr:
      in.rd = reg(), in.rs1 = reg();
      in.imm = static_cast<int32_t>(rng.next_below(4096));
      break;
    case Format::kHwlImm:
      in.rd = static_cast<uint8_t>(rng.next_below(2));
      in.imm = (s.op == Opcode::kLpCounti)
                   ? static_cast<int32_t>(rng.next_below(4096))
                   : static_cast<int32_t>(rng.next_below(4096)) * 2;
      break;
    case Format::kHwlReg:
      in.rd = static_cast<uint8_t>(rng.next_below(2));
      in.rs1 = reg();
      break;
    case Format::kHwlSetup:
      in.rd = static_cast<uint8_t>(rng.next_below(2));
      in.rs1 = reg();
      in.imm = (1 + static_cast<int32_t>(rng.next_below(4095))) * 2;
      break;
    case Format::kHwlSetupImm:
      in.rd = static_cast<uint8_t>(rng.next_below(2));
      in.imm = static_cast<int32_t>(rng.next_below(4096));
      in.imm2 = (1 + static_cast<int32_t>(rng.next_below(31))) * 2;
      break;
    case Format::kAct:
      in.rd = reg(), in.rs1 = reg();
      break;
  }
  return in;
}

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  const OpcodeInfo& s = GetParam();
  Rng rng(static_cast<uint64_t>(s.op) * 7919 + 13);
  for (int iter = 0; iter < 200; ++iter) {
    const Instr in = random_operands(s, rng);
    const uint32_t word = encode(in);
    const auto back = decode(word);
    ASSERT_TRUE(back.has_value()) << s.mnemonic << " word=0x" << std::hex << word;
    EXPECT_EQ(back->op, in.op) << s.mnemonic;
    EXPECT_EQ(back->rd, in.rd) << s.mnemonic;
    EXPECT_EQ(back->rs1, in.rs1) << s.mnemonic;
    EXPECT_EQ(back->rs2, in.rs2) << s.mnemonic;
    EXPECT_EQ(back->imm, in.imm) << s.mnemonic;
    EXPECT_EQ(back->imm2, in.imm2) << s.mnemonic;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTrip,
                         ::testing::ValuesIn(all_opcodes().begin(), all_opcodes().end()),
                         [](const ::testing::TestParamInfo<OpcodeInfo>& info) {
                           std::string n = info.param.mnemonic;
                           for (char& c : n)
                             if (c == '.') c = '_';
                           return n;
                         });

TEST(SpecTable, NoDuplicateEncodings) {
  // Every (major, funct3, funct7, format-class) key must be unique, or the
  // decoder would be ambiguous.
  const auto ops = all_opcodes();
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      const auto& x = ops[i];
      const auto& y = ops[j];
      if (x.major != y.major) continue;
      if (x.op == Opcode::kEcall || x.op == Opcode::kEbreak || y.op == Opcode::kEcall ||
          y.op == Opcode::kEbreak) {
        continue;  // distinguished by the imm field, checked elsewhere
      }
      EXPECT_FALSE(x.funct3 == y.funct3 && x.funct7 == y.funct7)
          << x.mnemonic << " vs " << y.mnemonic;
    }
  }
}

// ---- RV32C expansion ----

TEST(Compressed, KnownExpansions) {
  // c.addi a0, 1  -> 0x0505
  auto in = decode_compressed(0x0505);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kAddi);
  EXPECT_EQ(in->rd, kA0);
  EXPECT_EQ(in->rs1, kA0);
  EXPECT_EQ(in->imm, 1);
  EXPECT_EQ(in->size, 2);

  // c.li a0, -1 -> 0x557D
  in = decode_compressed(0x557D);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kAddi);
  EXPECT_EQ(in->rs1, kZero);
  EXPECT_EQ(in->imm, -1);

  // c.mv a0, a1 -> 0x852E
  in = decode_compressed(0x852E);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kAdd);
  EXPECT_EQ(in->rd, kA0);
  EXPECT_EQ(in->rs1, kZero);
  EXPECT_EQ(in->rs2, kA1);

  // c.add a0, a1 -> 0x952E
  in = decode_compressed(0x952E);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kAdd);
  EXPECT_EQ(in->rd, kA0);
  EXPECT_EQ(in->rs1, kA0);
  EXPECT_EQ(in->rs2, kA1);

  // c.lwsp a0, 8(sp) -> 0x4522
  in = decode_compressed(0x4522);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kLw);
  EXPECT_EQ(in->rs1, kSp);
  EXPECT_EQ(in->imm, 8);

  // c.swsp a0, 12(sp) -> 0xC62A
  in = decode_compressed(0xC62A);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kSw);
  EXPECT_EQ(in->rs1, kSp);
  EXPECT_EQ(in->rs2, kA0);
  EXPECT_EQ(in->imm, 12);

  // c.lw a2, 0(a0) -> 0x4110
  in = decode_compressed(0x4110);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kLw);
  EXPECT_EQ(in->rd, kA2);
  EXPECT_EQ(in->rs1, kA0);
  EXPECT_EQ(in->imm, 0);

  // c.ebreak -> 0x9002
  in = decode_compressed(0x9002);
  ASSERT_TRUE(in);
  EXPECT_EQ(in->op, Opcode::kEbreak);
}

TEST(Compressed, IllegalForms) {
  EXPECT_FALSE(decode_compressed(0x0000));  // defined illegal
  // c.addi4spn with zero immediate is reserved.
  EXPECT_FALSE(decode_compressed(0x0001 & 0xFFFC));
}

TEST(Compressed, DecodeAnyDispatch) {
  // 32-bit word low bits 11 -> full decode.
  const uint32_t addi_word = encode(mk(Opcode::kAddi, 1, 2, 0, 3));
  ASSERT_TRUE(decode_any(addi_word));
  EXPECT_EQ(decode_any(addi_word)->size, 4);
  // Compressed c.addi a0, 1.
  ASSERT_TRUE(decode_any(0x0505));
  EXPECT_EQ(decode_any(0x0505)->size, 2);
}

}  // namespace
}  // namespace rnnasip::isa
