// ISS semantics tests for the RV32IM base: ALU ops against C++ golden
// semantics (randomized property sweeps), branches, jumps, and the M
// extension's corner cases.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::expect_ok;
using iss_test::run_asm;
using namespace isa;

TEST(IssAlu, LiAndMove) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 42);
    b.li(kA1, -123456);
    b.li(kA2, 0x7FFFFFFF);
    b.mv(kA3, kA0);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 42u);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), -123456);
  EXPECT_EQ(h.core->reg(kA2), 0x7FFFFFFFu);
  EXPECT_EQ(h.core->reg(kA3), 42u);
}

TEST(IssAlu, X0IsHardwiredZero) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 7);
    b.add(kZero, kA0, kA0);
    b.mv(kA1, kZero);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kZero), 0u);
  EXPECT_EQ(h.core->reg(kA1), 0u);
}

struct BinCase {
  const char* name;
  void (ProgramBuilder::*emit)(Reg, Reg, Reg);
  uint32_t (*golden)(uint32_t, uint32_t);
};

class IssBinOp : public ::testing::TestWithParam<BinCase> {};

TEST_P(IssBinOp, MatchesGolden) {
  const auto& p = GetParam();
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 64; ++i) {
    uint32_t va = rng.next_u32();
    uint32_t vb = rng.next_u32();
    if (i == 0) va = 0, vb = 0;
    if (i == 1) va = 0x80000000u, vb = 0xFFFFFFFFu;  // INT_MIN / -1
    if (i == 2) va = 0x12345678u, vb = 0;
    auto h = run_asm(
        [&](ProgramBuilder& b) { (b.*p.emit)(kA2, kA0, kA1); },
        [&](iss::Core& c, iss::Memory&) {
          c.set_reg(kA0, va);
          c.set_reg(kA1, vb);
        });
    expect_ok(h);
    EXPECT_EQ(h.core->reg(kA2), p.golden(va, vb))
        << p.name << "(" << va << ", " << vb << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rv32im, IssBinOp,
    ::testing::Values(
        BinCase{"add", &ProgramBuilder::add, [](uint32_t a, uint32_t b) { return a + b; }},
        BinCase{"sub", &ProgramBuilder::sub, [](uint32_t a, uint32_t b) { return a - b; }},
        BinCase{"and", &ProgramBuilder::and_, [](uint32_t a, uint32_t b) { return a & b; }},
        BinCase{"or", &ProgramBuilder::or_, [](uint32_t a, uint32_t b) { return a | b; }},
        BinCase{"xor", &ProgramBuilder::xor_, [](uint32_t a, uint32_t b) { return a ^ b; }},
        BinCase{"sll", &ProgramBuilder::sll, [](uint32_t a, uint32_t b) { return a << (b & 31); }},
        BinCase{"srl", &ProgramBuilder::srl, [](uint32_t a, uint32_t b) { return a >> (b & 31); }},
        BinCase{"sra", &ProgramBuilder::sra,
                [](uint32_t a, uint32_t b) {
                  return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
                }},
        BinCase{"slt", &ProgramBuilder::slt,
                [](uint32_t a, uint32_t b) {
                  return static_cast<uint32_t>(static_cast<int32_t>(a) < static_cast<int32_t>(b));
                }},
        BinCase{"sltu", &ProgramBuilder::sltu,
                [](uint32_t a, uint32_t b) { return static_cast<uint32_t>(a < b); }},
        BinCase{"mul", &ProgramBuilder::mul,
                [](uint32_t a, uint32_t b) { return a * b; }},
        BinCase{"mulh", &ProgramBuilder::mulh,
                [](uint32_t a, uint32_t b) {
                  return static_cast<uint32_t>(
                      (static_cast<int64_t>(static_cast<int32_t>(a)) *
                       static_cast<int64_t>(static_cast<int32_t>(b))) >> 32);
                }},
        BinCase{"mulhu", &ProgramBuilder::mulhu,
                [](uint32_t a, uint32_t b) {
                  return static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32);
                }}),
    [](const ::testing::TestParamInfo<BinCase>& i) { return i.param.name; });

TEST(IssAlu, DivisionCornerCases) {
  struct Case {
    int32_t a, b, q, r;
  };
  // RISC-V spec: x/0 = -1, x%0 = x, INT_MIN/-1 = INT_MIN, INT_MIN%-1 = 0.
  const Case cases[] = {
      {7, 2, 3, 1},
      {-7, 2, -3, -1},
      {7, -2, -3, 1},
      {-7, -2, 3, -1},
      {5, 0, -1, 5},
      {INT32_MIN, -1, INT32_MIN, 0},
  };
  for (const auto& c : cases) {
    auto h = run_asm(
        [](ProgramBuilder& b) {
          b.div(kA2, kA0, kA1);
          b.rem(kA3, kA0, kA1);
        },
        [&](iss::Core& core, iss::Memory&) {
          core.set_reg(kA0, static_cast<uint32_t>(c.a));
          core.set_reg(kA1, static_cast<uint32_t>(c.b));
        });
    expect_ok(h);
    EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA2)), c.q) << c.a << "/" << c.b;
    EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), c.r) << c.a << "%" << c.b;
  }
}

TEST(IssAlu, BranchesTakenAndNotTaken) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto skip = b.make_label();
    auto end = b.make_label();
    b.li(kA0, 5);
    b.li(kA1, 10);
    b.li(kA2, 0);
    b.bltu(kA0, kA1, skip);  // taken
    b.li(kA2, 111);          // skipped
    b.bind(skip);
    b.bgeu(kA0, kA1, end);  // not taken
    b.addi(kA2, kA2, 7);    // executed
    b.bind(end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA2), 7u);
}

struct BranchCase {
  const char* name;
  void (ProgramBuilder::*emit)(Reg, Reg, ProgramBuilder::Label);
  bool (*golden)(int32_t, int32_t);
};

class IssBranch : public ::testing::TestWithParam<BranchCase> {};

TEST_P(IssBranch, TakenMatchesGoldenPredicate) {
  const auto& p = GetParam();
  const int32_t vals[] = {0, 1, -1, 42, -42, INT32_MAX, INT32_MIN};
  for (int32_t a : vals) {
    for (int32_t b : vals) {
      auto h = run_asm(
          [&](ProgramBuilder& pb) {
            auto taken = pb.make_label();
            pb.li(kA2, 0);
            (pb.*p.emit)(kA0, kA1, taken);
            pb.li(kA2, 1);  // fall-through marker
            pb.bind(taken);
          },
          [&](iss::Core& c, iss::Memory&) {
            c.set_reg(kA0, static_cast<uint32_t>(a));
            c.set_reg(kA1, static_cast<uint32_t>(b));
          });
      expect_ok(h);
      const bool taken = h.core->reg(kA2) == 0;
      EXPECT_EQ(taken, p.golden(a, b)) << p.name << "(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, IssBranch,
    ::testing::Values(
        BranchCase{"beq", &ProgramBuilder::beq, [](int32_t a, int32_t b) { return a == b; }},
        BranchCase{"bne", &ProgramBuilder::bne, [](int32_t a, int32_t b) { return a != b; }},
        BranchCase{"blt", &ProgramBuilder::blt, [](int32_t a, int32_t b) { return a < b; }},
        BranchCase{"bge", &ProgramBuilder::bge, [](int32_t a, int32_t b) { return a >= b; }},
        BranchCase{"bltu", &ProgramBuilder::bltu,
                   [](int32_t a, int32_t b) {
                     return static_cast<uint32_t>(a) < static_cast<uint32_t>(b);
                   }},
        BranchCase{"bgeu", &ProgramBuilder::bgeu,
                   [](int32_t a, int32_t b) {
                     return static_cast<uint32_t>(a) >= static_cast<uint32_t>(b);
                   }}),
    [](const ::testing::TestParamInfo<BranchCase>& i) { return i.param.name; });

TEST(IssAlu, CountdownLoopWithBranch) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto loop = b.make_label();
    b.li(kA0, 10);  // counter
    b.li(kA1, 0);   // sum
    b.bind(loop);
    b.add(kA1, kA1, kA0);
    b.addi(kA0, kA0, -1);
    b.bne(kA0, kZero, loop);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA1), 55u);
}

TEST(IssAlu, JalLinksAndJumps) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto target = b.make_label();
    b.li(kA0, 1);
    b.jal(kRa, target);
    b.li(kA0, 999);  // must be skipped
    b.bind(target);
    b.addi(kA0, kA0, 1);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 2u);
  // ra = address of the instruction after the jal (base + li + jal = +8).
  EXPECT_EQ(h.core->reg(kRa), 0x1000u + 8u);
}

TEST(IssAlu, JalrFunctionCall) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto fn = b.make_label();
    auto end = b.make_label();
    b.li(kA0, 20);
    b.jal(kRa, fn);
    b.jal(kZero, end);  // jump over the function body
    b.bind(fn);
    b.addi(kA0, kA0, 22);
    b.jalr(kZero, kRa, 0);  // return
    b.bind(end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 42u);
}

TEST(IssAlu, LuiAuipc) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.lui(kA0, 0x12345);
    b.auipc(kA1, 0);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 0x12345000u);
  EXPECT_EQ(h.core->reg(kA1), 0x1000u + 4u);  // pc of the auipc itself
}

TEST(IssAlu, TrapOnIllegalInstruction) {
  iss::Memory mem(1u << 16);
  iss::Core core(&mem);
  mem.store32(0x1000, 0xFFFFFFFFu);
  core.reset(0x1000);
  auto res = core.run(10);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kTrap);
  EXPECT_NE(res.trap_message.find("illegal"), std::string::npos);
}

TEST(IssAlu, MaxInstrsCap) {
  auto mem = std::make_unique<iss::Memory>(1u << 16);
  assembler::ProgramBuilder b(0x1000);
  auto loop = b.make_label();
  b.bind(loop);
  b.jal(kZero, loop);  // infinite loop
  auto prog = b.build();
  iss::Core core(mem.get());
  core.load_program(prog);
  core.reset(prog.base);
  auto res = core.run(1000);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kMaxInstrs);
  EXPECT_EQ(res.instrs, 1000u);
}

}  // namespace
}  // namespace rnnasip
