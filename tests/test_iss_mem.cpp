// Memory model and load/store semantics tests (alignment traps, sign
// extension, bulk helpers).
#include <gtest/gtest.h>

#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::expect_ok;
using iss_test::run_asm;
using namespace isa;

constexpr uint32_t kData = 0x8000;

TEST(Memory, ByteHalfWordRoundTrip) {
  iss::Memory mem(1u << 16);
  mem.store8(0x100, 0xAB);
  mem.store16(0x102, 0xBEEF);
  mem.store32(0x104, 0xDEADBEEF);
  EXPECT_EQ(mem.load8(0x100), 0xAB);
  EXPECT_EQ(mem.load16(0x102), 0xBEEF);
  EXPECT_EQ(mem.load32(0x104), 0xDEADBEEFu);
}

TEST(Memory, LittleEndianLayout) {
  iss::Memory mem(1u << 16);
  mem.store32(0x100, 0x04030201);
  EXPECT_EQ(mem.load8(0x100), 1);
  EXPECT_EQ(mem.load8(0x103), 4);
  EXPECT_EQ(mem.load16(0x100), 0x0201);
}

TEST(Memory, MisalignedAccessesThrow) {
  iss::Memory mem(1u << 16);
  EXPECT_THROW(mem.load32(0x101), std::runtime_error);
  EXPECT_THROW(mem.load16(0x101), std::runtime_error);
  EXPECT_THROW(mem.store32(0x102, 0), std::runtime_error);
  EXPECT_THROW(mem.load32(1u << 16), std::runtime_error);
}

TEST(Memory, HalfwordBulkHelpers) {
  iss::Memory mem(1u << 16);
  const std::vector<int16_t> vals = {-1, 2, -32768, 32767, 0};
  mem.write_halves(0x200, vals);
  const auto back = mem.read_halves(0x200, vals.size());
  EXPECT_EQ(back, vals);
}

TEST(IssMem, LoadSignExtension) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        b.lb(kA1, 0, kA0);
        b.lbu(kA2, 0, kA0);
        b.lh(kA3, 2, kA0);
        b.lhu(kA4, 2, kA0);
        b.lw(kA5, 4, kA0);
      },
      [](iss::Core&, iss::Memory& m) {
        m.store8(kData, 0x80);
        m.store16(kData + 2, 0x8000);
        m.store32(kData + 4, 0x80000000);
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), -128);
  EXPECT_EQ(h.core->reg(kA2), 0x80u);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), -32768);
  EXPECT_EQ(h.core->reg(kA4), 0x8000u);
  EXPECT_EQ(h.core->reg(kA5), 0x80000000u);
}

TEST(IssMem, StoreWidths) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData);
    b.li(kA1, 0x11223344);
    b.sw(kA1, 0, kA0);
    b.sh(kA1, 4, kA0);
    b.sb(kA1, 6, kA0);
  });
  expect_ok(h);
  EXPECT_EQ(h.mem->load32(kData), 0x11223344u);
  EXPECT_EQ(h.mem->load16(kData + 4), 0x3344u);
  EXPECT_EQ(h.mem->load8(kData + 6), 0x44u);
}

TEST(IssMem, MisalignedLoadTraps) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData + 1);
    b.lw(kA1, 0, kA0);
  });
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_NE(h.result.trap_message.find("misaligned"), std::string::npos);
}

// Regression: trap diagnostics must name the faulting address, the access
// size, and the direction, in the message and in the structured record.
TEST(IssMem, MisalignedLoadReportsAddressSizeDirection) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData + 1);
    b.lw(kA1, 0, kA0);
  });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kMemMisaligned);
  EXPECT_EQ(h.result.trap.addr, kData + 1);
  EXPECT_NE(h.result.trap_message.find("addr=0x8001"), std::string::npos)
      << h.result.trap_message;
  EXPECT_NE(h.result.trap_message.find("size=4"), std::string::npos);
  EXPECT_NE(h.result.trap_message.find("read"), std::string::npos);
}

TEST(IssMem, OutOfRangeStoreReportsAddressSizeDirection) {
  // run_asm's memory spans 1 MiB; 0x200000 is well outside.
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 0x200000);
    b.sh(kA1, 0, kA0);
  });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kMemOutOfRange);
  EXPECT_EQ(h.result.trap.addr, 0x200000u);
  EXPECT_NE(h.result.trap_message.find("out of range"), std::string::npos);
  EXPECT_NE(h.result.trap_message.find("addr=0x200000"), std::string::npos)
      << h.result.trap_message;
  EXPECT_NE(h.result.trap_message.find("size=2"), std::string::npos);
  EXPECT_NE(h.result.trap_message.find("write"), std::string::npos);
}

TEST(IssMem, HostSideOutOfRangeStillThrowsRuntimeError) {
  // Misuse of Memory outside a run loop keeps throwing (TrapException is a
  // std::runtime_error), so host code gets a diagnosable failure.
  iss::Memory mem(1u << 16);
  EXPECT_THROW(mem.load32(0xFFFFFFF0u), std::runtime_error);
  try {
    mem.store16(0x20000, 1);
    FAIL();
  } catch (const iss::TrapException& e) {
    EXPECT_EQ(e.cause(), iss::TrapCause::kMemOutOfRange);
    EXPECT_EQ(e.addr(), 0x20000u);
  }
}

}  // namespace
}  // namespace rnnasip
