// Additional ISS coverage: compressed instructions executing from memory,
// ecall exits, memory wait states, decoder fuzzing, and determinism.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/isa/isa.h"
#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::expect_ok;
using iss_test::run_asm;
using namespace isa;

TEST(IssCompressed, ExecutesCompressedStreamFromMemory) {
  // Hand-assembled RVC: c.li a0, 13; c.addi a0, 2; c.mv a1, a0; c.ebreak.
  iss::Memory mem(1u << 16);
  mem.store16(0x1000, 0x4535);  // c.li a0, 13
  mem.store16(0x1002, 0x0509);  // c.addi a0, 2
  mem.store16(0x1004, 0x85AA);  // c.mv a1, a0
  mem.store16(0x1006, 0x9002);  // c.ebreak
  iss::Core core(&mem);
  core.reset(0x1000);
  const auto res = core.run(100);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kEbreak);
  EXPECT_EQ(core.reg(kA0), 15u);
  EXPECT_EQ(core.reg(kA1), 15u);
  // 4 instructions over 8 bytes: PC advanced by 2 per instruction.
  EXPECT_EQ(res.instrs, 4u);
}

TEST(IssCompressed, MixedWidthStream) {
  // A 32-bit addi followed by a compressed c.addi must sequence correctly.
  iss::Memory mem(1u << 16);
  const uint32_t addi = encode([] {
    Instr i;
    i.op = Opcode::kAddi;
    i.rd = kA0;
    i.rs1 = kZero;
    i.imm = 100;
    return i;
  }());
  mem.store32(0x1000, addi);
  mem.store16(0x1004, 0x0505);  // c.addi a0, 1
  mem.store16(0x1006, 0x9002);  // c.ebreak
  iss::Core core(&mem);
  core.reset(0x1000);
  const auto res = core.run(100);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kEbreak);
  EXPECT_EQ(core.reg(kA0), 101u);
}

TEST(IssMisc, EcallExitsWithDistinctStatus) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 7);
    b.ecall();
    b.li(kA0, 9);  // must not run
  });
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kEcall);
  EXPECT_EQ(h.core->reg(kA0), 7u);
}

TEST(IssMisc, MemWaitStatesChargeLoadsAndStores) {
  iss::Core::Config cfg;
  cfg.timing.mem_wait_states = 3;
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, 0x8000);
        b.lw(kA1, 0, kA0);   // 1 + 3 (the addi below breaks the load-use pair)
        b.addi(kA2, kA2, 1); // 1
        b.sw(kA1, 4, kA0);   // 1 + 3
      },
      {}, cfg);
  expect_ok(h);
  const auto& s = h.core->stats().by_opcode();
  EXPECT_EQ(s.at(Opcode::kLw).cycles, 4u);
  EXPECT_EQ(s.at(Opcode::kSw).cycles, 4u);
  EXPECT_EQ(s.at(Opcode::kAddi).cycles, s.at(Opcode::kAddi).instrs);
}

TEST(IssMisc, MemWaitStatesChargeRnnDot) {
  iss::Core::Config cfg;
  cfg.timing.mem_wait_states = 2;
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, 0x8000);
        b.pl_sdotsp_h(0, kZero, kA0, kZero);
      },
      {}, cfg);
  expect_ok(h);
  EXPECT_EQ(h.core->stats().by_opcode().at(Opcode::kPlSdotspH0).cycles, 3u);
}

TEST(IssMisc, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto h = run_asm([](ProgramBuilder& b) {
      auto end = b.make_label();
      b.li(kA0, 0x8000);
      b.li(kA2, 0);
      b.lp_setupi(0, 100, end);
      b.p_lw(kA1, 4, kA0);
      b.pv_sdotsp_h(kA2, kA1, kA1);
      b.bind(end);
    });
    return std::make_pair(h.result.cycles, h.core->reg(kA2));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(DecoderFuzz, RandomWordsNeverCrashAndRoundTrip) {
  // Property: decode never crashes on arbitrary words, and whenever a
  // 32-bit word decodes, re-encoding the result reproduces a word that
  // decodes to the same instruction (encode may normalize don't-care bits).
  Rng rng(0xF022);
  int decoded = 0;
  for (int i = 0; i < 200000; ++i) {
    const uint32_t w = rng.next_u32();
    const auto in = decode(w);
    if (!in) continue;
    ++decoded;
    const uint32_t w2 = encode(*in);
    const auto in2 = decode(w2);
    ASSERT_TRUE(in2.has_value()) << std::hex << w;
    EXPECT_EQ(in2->op, in->op) << std::hex << w;
    EXPECT_EQ(in2->rd, in->rd);
    EXPECT_EQ(in2->rs1, in->rs1);
    EXPECT_EQ(in2->rs2, in->rs2);
    EXPECT_EQ(in2->imm, in->imm);
    EXPECT_EQ(in2->imm2, in->imm2);
  }
  EXPECT_GT(decoded, 1000);  // the encoding space is reasonably dense
}

TEST(DecoderFuzz, RandomCompressedWordsNeverCrash) {
  Rng rng(0xF023);
  int decoded = 0;
  for (int i = 0; i < 100000; ++i) {
    const uint16_t h = static_cast<uint16_t>(rng.next_u32());
    if ((h & 0x3) == 0x3) continue;  // 32-bit space
    const auto in = decode_compressed(h);
    if (in) {
      ++decoded;
      EXPECT_EQ(in->size, 2);
      EXPECT_NE(in->op, Opcode::kInvalid);
    }
  }
  EXPECT_GT(decoded, 1000);
}

TEST(IssCsr, CycleAndInstretCountersTrackExecution) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto end = b.make_label();
    b.rdcycle(kA2);       // snapshot before the loop
    b.rdinstret(kA3);
    b.lp_setupi(0, 50, end);
    b.addi(kA0, kA0, 1);
    b.addi(kA1, kA1, 1);
    b.bind(end);
    b.rdcycle(kA4);       // snapshot after
    b.rdinstret(kA5);
  });
  expect_ok(h);
  // A counter read returns the count up to (not including) the reading
  // instruction. Between the two snapshots sit: the first rdcycle itself,
  // the rdinstret, the lp.setupi, and the 100 single-cycle body
  // instructions = 103 cycles and 103 instructions.
  const uint32_t dcyc = h.core->reg(kA4) - h.core->reg(kA2);
  const uint32_t dins = h.core->reg(kA5) - h.core->reg(kA3);
  EXPECT_EQ(dcyc, 103u);
  EXPECT_EQ(dins, 103u);
}

TEST(IssCsr, MscratchReadWrite) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, 0xF0);
        b.csrrw(kA1, 0x340, kA0);   // old (0) -> a1, mscratch = 0xF0
        b.li(kA2, 0x0F);
        b.csrrs(kA3, 0x340, kA2);   // old (0xF0) -> a3, mscratch |= 0x0F
        b.csrrc(kA4, 0x340, kA2);   // old (0xFF) -> a4, mscratch &= ~0x0F
        b.csrrs(kA5, 0x340, kZero); // pure read
      });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA1), 0u);
  EXPECT_EQ(h.core->reg(kA3), 0xF0u);
  EXPECT_EQ(h.core->reg(kA4), 0xFFu);
  EXPECT_EQ(h.core->reg(kA5), 0xF0u);
}

TEST(IssCsr, WritesToReadOnlyCountersTrap) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 5);
    b.csrrw(kA1, 0xC00, kA0);  // cycle is read-only
  });
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_NE(h.result.trap_message.find("read-only"), std::string::npos);
}

TEST(IssCsr, UnknownCsrTraps) {
  auto h = run_asm([](ProgramBuilder& b) { b.csrrs(kA0, 0x123, kZero); });
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
}

TEST(IssCsr, MhartidIsZeroAndPureReadsDontTrap) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 7);
    b.csrrs(kA1, 0xF14, kZero);  // mhartid, pure read
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA1), 0u);
}

TEST(IssMisc, StatsCsvExport) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, 0x8000);
    b.p_lw(kA1, 4, kA0);
    b.pv_sdotsp_h(kA2, kA1, kA1);
  });
  expect_ok(h);
  const std::string csv = h.core->stats().to_csv();
  EXPECT_NE(csv.find("mnemonic,instrs,cycles\n"), std::string::npos);
  EXPECT_NE(csv.find("lw!,1,"), std::string::npos);      // display grouping
  EXPECT_NE(csv.find("pv.sdot,1,1"), std::string::npos);
  EXPECT_NE(csv.find("total,"), std::string::npos);
}

TEST(IssMisc, StatsMergeAndReset) {
  iss::ExecStats a, b;
  a.record(Opcode::kAddi, 1);
  a.add_macs(3);
  b.record(Opcode::kAddi, 2);
  b.record(Opcode::kMul, 1);
  b.add_macs(4);
  a.merge(b);
  EXPECT_EQ(a.total_instrs(), 3u);
  EXPECT_EQ(a.total_cycles(), 4u);
  EXPECT_EQ(a.total_macs(), 7u);
  EXPECT_EQ(a.by_opcode().at(Opcode::kAddi).instrs, 2u);
  a.reset();
  EXPECT_EQ(a.total_instrs(), 0u);
  EXPECT_TRUE(a.by_opcode().empty());
}

TEST(IssMisc, RunResumesAfterMaxInstrs) {
  // Hitting the instruction cap must leave the core in a resumable state.
  iss::Memory mem(1u << 16);
  assembler::ProgramBuilder b(0x1000);
  for (int i = 0; i < 100; ++i) b.addi(kA0, kA0, 1);
  b.ebreak();
  auto p = b.build();
  iss::Core core(&mem);
  core.load_program(p);
  core.reset(p.base);
  auto r1 = core.run(40);
  EXPECT_EQ(r1.exit, iss::RunResult::Exit::kMaxInstrs);
  auto r2 = core.run(1000);
  EXPECT_EQ(r2.exit, iss::RunResult::Exit::kEbreak);
  EXPECT_EQ(core.reg(kA0), 100u);
  EXPECT_EQ(r1.instrs + r2.instrs, 101u);
}

}  // namespace
}  // namespace rnnasip
