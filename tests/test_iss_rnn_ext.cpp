// Tests for the paper's RNN ISA extensions: pl.sdotsp.h.0/1 SPR
// double-buffering semantics (Table II schedule) and the pl.tanh / pl.sig
// activation unit against the PLA golden model.
#include <gtest/gtest.h>

#include <cmath>

#include "src/activation/pla.h"
#include "src/common/bits.h"
#include "src/common/fixed_point.h"
#include "src/common/rng.h"
#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::expect_ok;
using iss_test::run_asm;
using namespace isa;

constexpr uint32_t kData = 0x8000;

TEST(IssRnnExt, SdotspLoadsAndIncrementsPointer) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        // Preload SPR0; rd = x0 discards the (stale) accumulate.
        b.pl_sdotsp_h(0, kZero, kA0, kZero);
      },
      [](iss::Core&, iss::Memory& m) { m.store32(kData, 0xAABBCCDD); });
  expect_ok(h);
  EXPECT_EQ(h.core->spr(0), 0xAABBCCDDu);
  EXPECT_EQ(h.core->reg(kA0), kData + 4u);
}

TEST(IssRnnExt, SdotspUsesPreviouslyLoadedValue) {
  // SPR is consumed *before* the new load lands: the MAC must use the value
  // loaded by the previous same-SPR instruction (Fig. 1 datapath).
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);       // weight pointer
        b.li(kA1, 0);           // accumulator
        b.li(kA2, 0);
        b.pl_sdotsp_h(0, kZero, kA0, kZero);  // SPR0 <- w0 = [1, 2]
        b.pl_sdotsp_h(0, kA1, kA0, kA3);      // acc += w0*b; SPR0 <- w1
        b.pl_sdotsp_h(0, kA2, kA0, kA3);      // acc2 += w1*b; SPR0 <- w2
      },
      [](iss::Core& c, iss::Memory& m) {
        m.write_halves(kData, std::vector<int16_t>{1, 2, 10, 20, 100, 200});
        c.set_reg(kA3, pack_halves(3, 4));  // b = [3, 4]
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), 1 * 3 + 2 * 4);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA2)), 10 * 3 + 20 * 4);
  EXPECT_EQ(h.core->spr(0), static_cast<uint32_t>(pack_halves(100, 200)));
  EXPECT_EQ(h.core->reg(kA0), kData + 12u);
}

TEST(IssRnnExt, TwoSprSchedule) {
  // The Table II schedule: two SPRs serving interleaved output channels.
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);       // weights for output 0
        b.li(kA1, kData + 16);  // weights for output 1
        b.li(kA4, 0);
        b.li(kA5, 0);
        b.pl_sdotsp_h(0, kZero, kA0, kZero);  // preload w0[0..1]
        b.pl_sdotsp_h(1, kZero, kA1, kZero);  // preload w1[0..1]
        b.pl_sdotsp_h(0, kA4, kA0, kA6);      // out0 += w0[0..1] * x
        b.pl_sdotsp_h(1, kA5, kA1, kA6);      // out1 += w1[0..1] * x
        b.pl_sdotsp_h(0, kA4, kA0, kA7);      // out0 += w0[2..3] * x'
        b.pl_sdotsp_h(1, kA5, kA1, kA7);      // out1 += w1[2..3] * x'
      },
      [](iss::Core& c, iss::Memory& m) {
        m.write_halves(kData, std::vector<int16_t>{1, 2, 3, 4});        // w0
        m.write_halves(kData + 16, std::vector<int16_t>{5, 6, 7, 8});   // w1
        c.set_reg(kA6, pack_halves(1, 1));   // x pair 0
        c.set_reg(kA7, pack_halves(2, 2));   // x pair 1
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA4)), (1 + 2) * 1 + (3 + 4) * 2);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA5)), (5 + 6) * 1 + (7 + 8) * 2);
}

TEST(IssRnnExt, SdotspRdEqualsAddressRegTraps) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData);
    b.pl_sdotsp_h(0, kA0, kA0, kA1);
  });
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
}

TEST(IssRnnExt, FeatureGateTraps) {
  iss::Core::Config cfg;
  cfg.has_rnn_ext = false;
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        b.pl_sdotsp_h(0, kZero, kA0, kZero);
      },
      {}, cfg);
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_NE(h.result.trap_message.find("RNN-ext"), std::string::npos);
}

TEST(IssRnnExt, TanhMatchesPlaGoldenModel) {
  const auto table =
      activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  Rng rng(0x7A17);
  for (int i = 0; i < 500; ++i) {
    const int32_t x = static_cast<int32_t>(rng.next_u32() % 65536) - 32768;
    auto h = run_asm(
        [](ProgramBuilder& b) { b.pl_tanh(kA1, kA0); },
        [&](iss::Core& c, iss::Memory&) { c.set_reg(kA0, static_cast<uint32_t>(x)); });
    expect_ok(h);
    EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), table.eval_raw(x)) << "x=" << x;
  }
}

TEST(IssRnnExt, SigmoidMatchesPlaGoldenModel) {
  const auto table =
      activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
  Rng rng(0x516);
  for (int i = 0; i < 500; ++i) {
    const int32_t x = static_cast<int32_t>(rng.next_u32() % 65536) - 32768;
    auto h = run_asm(
        [](ProgramBuilder& b) { b.pl_sig(kA1, kA0); },
        [&](iss::Core& c, iss::Memory&) { c.set_reg(kA0, static_cast<uint32_t>(x)); });
    expect_ok(h);
    EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), table.eval_raw(x)) << "x=" << x;
  }
}

TEST(IssRnnExt, ActivationAccuracyEndToEnd) {
  // pl.tanh on the paper design point is within its reported error bound of
  // the real function for in-range values.
  for (double x = -6.0; x <= 6.0; x += 0.0137) {
    auto h = run_asm(
        [](ProgramBuilder& b) {
          b.pl_tanh(kA1, kA0);
          b.pl_sig(kA2, kA0);
        },
        [&](iss::Core& c, iss::Memory&) {
          c.set_reg(kA0, static_cast<uint32_t>(quantize(x)));
        });
    expect_ok(h);
    EXPECT_NEAR(dequantize(static_cast<int32_t>(h.core->reg(kA1))), std::tanh(x), 2e-3);
    EXPECT_NEAR(dequantize(static_cast<int32_t>(h.core->reg(kA2))),
                1.0 / (1.0 + std::exp(-x)), 2e-3);
  }
}

}  // namespace
}  // namespace rnnasip
