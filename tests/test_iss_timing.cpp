// Cycle-model tests. These pin the exact costs that make Table I's
// cycle/instruction ratios come out right: taken branches 2 cycles, jumps 2,
// load-use stall 1 (charged to the load), hardware loops free, and the
// pl.sdotsp SPR rules (Table II's 9-cycle inner loop including the bubble).
#include <gtest/gtest.h>

#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::expect_ok;
using iss_test::run_asm;
using namespace isa;

constexpr uint32_t kData = 0x8000;

uint64_t cycles_of(const iss_test::Harness& h, Opcode op) {
  auto it = h.core->stats().by_opcode().find(op);
  return it == h.core->stats().by_opcode().end() ? 0 : it->second.cycles;
}

TEST(IssTiming, StraightLineAluIsOneCyclePerInstr) {
  auto h = run_asm([](ProgramBuilder& b) {
    for (int i = 0; i < 10; ++i) b.addi(kA0, kA0, 1);
  });
  expect_ok(h);
  EXPECT_EQ(h.result.instrs, 11u);  // 10 addi + ebreak
  EXPECT_EQ(h.result.cycles, 11u);
}

TEST(IssTiming, TakenBranchCostsTwoCycles) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto t1 = b.make_label();
    auto t2 = b.make_label();
    b.beq(kZero, kZero, t1);  // taken: 2 cycles
    b.nop();                  // skipped
    b.bind(t1);
    b.bne(kZero, kZero, t2);  // not taken: 1 cycle
    b.bind(t2);
  });
  expect_ok(h);
  EXPECT_EQ(cycles_of(h, Opcode::kBeq), 2u);
  EXPECT_EQ(cycles_of(h, Opcode::kBne), 1u);
}

TEST(IssTiming, JumpsCostTwoCycles) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto t = b.make_label();
    b.jal(kZero, t);
    b.bind(t);
  });
  expect_ok(h);
  EXPECT_EQ(cycles_of(h, Opcode::kJal), 2u);
}

TEST(IssTiming, LoadUseStallChargedToLoad) {
  // lw immediately followed by a consumer: load costs 2 cycles.
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        b.lw(kA1, 0, kA0);
        b.add(kA2, kA1, kA1);  // consumes a1 directly after the load
      },
      [](iss::Core&, iss::Memory& m) { m.store32(kData, 3); });
  expect_ok(h);
  EXPECT_EQ(cycles_of(h, Opcode::kLw), 2u);
}

TEST(IssTiming, LoadWithIndependentNextInstrDoesNotStall) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        b.lw(kA1, 0, kA0);
        b.addi(kA3, kZero, 1);  // independent
        b.add(kA2, kA1, kA1);   // consumer one instruction later: no stall
      },
      [](iss::Core&, iss::Memory& m) { m.store32(kData, 3); });
  expect_ok(h);
  EXPECT_EQ(cycles_of(h, Opcode::kLw), 1u);
}

TEST(IssTiming, PostIncLoadPairWithSdotMatchesTableIb) {
  // Level-b inner loop shape: lw! w; lw! x; pv.sdotsp -> the second load
  // stalls, total 4 cycles per 2 MACs (Table Ib: lw! at 1.5 cyc/instr).
  auto h = run_asm(
      [](ProgramBuilder& b) {
        auto end = b.make_label();
        b.li(kA0, kData);
        b.li(kA1, kData + 512);
        b.li(kA2, 0);
        b.lp_setupi(0, 100, end);
        b.p_lw(kA3, 4, kA0);
        b.p_lw(kA4, 4, kA1);
        b.pv_sdotsp_h(kA2, kA3, kA4);
        b.bind(end);
      });
  expect_ok(h);
  const auto& s = h.core->stats().by_opcode();
  // 200 p.lw at 1.5 avg = 300 cycles; 100 sdot at 1 cycle.
  EXPECT_EQ(s.at(Opcode::kPLw).instrs, 200u);
  EXPECT_EQ(s.at(Opcode::kPLw).cycles, 300u);
  EXPECT_EQ(s.at(Opcode::kPvSdotspH).instrs, 100u);
  EXPECT_EQ(s.at(Opcode::kPvSdotspH).cycles, 100u);
}

TEST(IssTiming, HardwareLoopBackEdgeIsFree) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto end = b.make_label();
    b.lp_setupi(0, 50, end);
    b.addi(kA0, kA0, 1);
    b.addi(kA1, kA1, 1);
    b.bind(end);
  });
  expect_ok(h);
  // 1 setup + 100 body + 1 ebreak = 102 cycles, no loop overhead.
  EXPECT_EQ(h.result.cycles, 102u);
}

TEST(IssTiming, BranchLoopVsHardwareLoopOverhead) {
  // The same 100-iteration body costs 2 extra cycles per iteration with a
  // bne back-edge (taken branch), matching the paper's HWL motivation.
  auto hw = run_asm([](ProgramBuilder& b) {
    auto end = b.make_label();
    b.lp_setupi(0, 100, end);
    b.addi(kA0, kA0, 1);
    b.bind(end);
  });
  auto sw = run_asm([](ProgramBuilder& b) {
    auto loop = b.make_label();
    b.li(kT0, 100);
    b.bind(loop);
    b.addi(kA0, kA0, 1);
    b.addi(kT0, kT0, -1);
    b.bne(kT0, kZero, loop);
  });
  expect_ok(hw);
  expect_ok(sw);
  EXPECT_EQ(hw.core->reg(kA0), 100u);
  EXPECT_EQ(sw.core->reg(kA0), 100u);
  // HWL: setup + 100 = 101 (+1 ebreak). SW: li + 100*(addi+addi+bne@2) - 1
  // (last bne not taken) = ~400.
  EXPECT_LT(hw.result.cycles + 290, sw.result.cycles);
}

TEST(IssTiming, SdotspSingleCycleWhenAlternating) {
  // Alternating SPR0/SPR1 never stalls: the Table II right-hand loop.
  auto h = run_asm(
      [](ProgramBuilder& b) {
        auto end = b.make_label();
        b.li(kA0, kData);
        b.li(kA1, kData + 1024);
        b.li(kA2, 0);
        b.li(kA3, 0);
        b.pl_sdotsp_h(0, kZero, kA0, kZero);
        b.pl_sdotsp_h(1, kZero, kA1, kZero);
        b.lp_setupi(0, 50, end);
        b.pl_sdotsp_h(0, kA2, kA0, kA6);
        b.pl_sdotsp_h(1, kA3, kA1, kA6);
        b.pl_sdotsp_h(0, kA2, kA0, kA7);
        b.pl_sdotsp_h(1, kA3, kA1, kA7);
        b.bind(end);
      });
  expect_ok(h);
  const auto& s = h.core->stats().by_opcode();
  EXPECT_EQ(s.at(Opcode::kPlSdotspH0).cycles, s.at(Opcode::kPlSdotspH0).instrs);
  EXPECT_EQ(s.at(Opcode::kPlSdotspH1).cycles, s.at(Opcode::kPlSdotspH1).instrs);
}

TEST(IssTiming, SdotspBackToBackSameSprStalls) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData);
    b.pl_sdotsp_h(0, kZero, kA0, kZero);
    b.pl_sdotsp_h(0, kA2, kA0, kA6);  // same SPR immediately: +1 stall
  });
  expect_ok(h);
  const auto& s = h.core->stats().by_opcode();
  EXPECT_EQ(s.at(Opcode::kPlSdotspH0).instrs, 2u);
  EXPECT_EQ(s.at(Opcode::kPlSdotspH0).cycles, 3u);
}

TEST(IssTiming, TableIIRightLoopIsNineCycles) {
  // The paper's Table II (right): lw rB + bubble + 4 alternating pl.sdotsp
  // in a hardware loop -> the 5-instruction body costs 6 cycles per
  // iteration (the lw is charged 2 for the bubble), vs 9 cycles for the
  // 9-instruction left-hand body.
  auto right = run_asm(
      [](ProgramBuilder& b) {
        auto end = b.make_label();
        b.li(kA0, kData);          // rAAddr0 (SPR0 stream)
        b.li(kA1, kData + 2048);   // rAAddr1 (SPR1 stream)
        b.li(kT0, kData + 4096);   // rBAddr
        b.li(kA4, 0);
        b.li(kA5, 0);
        b.li(kA6, 0);
        b.li(kA7, 0);
        b.pl_sdotsp_h(0, kZero, kA0, kZero);  // preload SPR0
        b.pl_sdotsp_h(1, kZero, kA1, kZero);  // preload SPR1
        b.lp_setupi(0, 32, end);
        b.p_lw(kT1, 4, kT0);               // lw rB (bubble follows)
        b.pl_sdotsp_h(0, kA4, kA0, kT1);   // consumes rB directly: stall
        b.pl_sdotsp_h(1, kA5, kA1, kT1);
        b.pl_sdotsp_h(0, kA6, kA0, kT1);
        b.pl_sdotsp_h(1, kA7, kA1, kT1);
        b.bind(end);
      });
  expect_ok(right);
  const auto& s = right.core->stats().by_opcode();
  // lw! 2.0 cycles average (Table Id): 32 loads, 64 cycles.
  EXPECT_EQ(s.at(Opcode::kPLw).instrs, 32u);
  EXPECT_EQ(s.at(Opcode::kPLw).cycles, 64u);
  // 4 sdot per iteration, 1 cycle each.
  EXPECT_EQ(s.at(Opcode::kPlSdotspH0).cycles + s.at(Opcode::kPlSdotspH1).cycles,
            2u + 32u * 4u);
}

TEST(IssTiming, DivIsMultiCycle) {
  auto h = run_asm(
      [](ProgramBuilder& b) { b.div(kA2, kA0, kA1); },
      [](iss::Core& c, iss::Memory&) {
        c.set_reg(kA0, 100);
        c.set_reg(kA1, 7);
      });
  expect_ok(h);
  EXPECT_EQ(cycles_of(h, Opcode::kDiv), 32u);
}

}  // namespace
}  // namespace rnnasip
