// Structured trap model tests: every trap path must surface a typed cause
// plus the faulting pc (and address where applicable), and leave the core
// resumable rather than aborting the process.
#include <gtest/gtest.h>

#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::run_asm;
using namespace isa;

constexpr uint32_t kBase = 0x1000;
constexpr uint32_t kData = 0x8000;

TEST(IssTrap, UnimplementedCsr) {
  auto h = run_asm([](ProgramBuilder& b) { b.csrrs(kA0, 0x123, kZero); });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kCsrUnimplemented);
  EXPECT_EQ(h.result.trap.pc, kBase);
  EXPECT_EQ(h.result.trap_message, h.result.trap.message);
}

TEST(IssTrap, ReadOnlyCsrWrite) {
  uint32_t trap_pc = 0;
  auto h = run_asm([&](ProgramBuilder& b) {
    b.li(kA0, 7);
    trap_pc = kBase + 4 * static_cast<uint32_t>(b.position());
    b.csrrw(kA1, 0xC00, kA0);  // cycle counter is read-only
  });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kCsrReadOnly);
  EXPECT_EQ(h.result.trap.pc, trap_pc);
  EXPECT_NE(h.result.trap_message.find("read-only"), std::string::npos);
}

TEST(IssTrap, XpulpGate) {
  iss::Core::Config cfg;
  cfg.has_xpulp = false;
  auto h = run_asm([](ProgramBuilder& b) { b.p_mac(kA0, kA1, kA2); }, {}, cfg);
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kIsaGateXpulp);
  EXPECT_EQ(h.result.trap.pc, kBase);
  EXPECT_NE(h.result.trap_message.find("Xpulp"), std::string::npos);
}

TEST(IssTrap, RnnExtGate) {
  iss::Core::Config cfg;
  cfg.has_rnn_ext = false;
  auto h = run_asm([](ProgramBuilder& b) { b.pl_tanh(kA0, kA1); }, {}, cfg);
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kIsaGateRnnExt);
  EXPECT_EQ(h.result.trap.pc, kBase);
  EXPECT_NE(h.result.trap_message.find("RNN-ext"), std::string::npos);
}

TEST(IssTrap, SdotspRdRs1Conflict) {
  // rd == rs1 would make the post-incremented weight pointer clobber the
  // accumulator; the ISS rejects it with a typed cause.
  auto h = run_asm([](ProgramBuilder& b) { b.pl_sdotsp_h(0, kA0, kA0, kA1); });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kRdRs1Conflict);
  EXPECT_EQ(h.result.trap.pc, kBase);
}

TEST(IssTrap, InvalidOpcode) {
  // All-zero memory decodes to an invalid instruction at the reset pc.
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.reset(kBase);
  const auto res = core.run(100);
  ASSERT_EQ(res.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(res.trap.cause, iss::TrapCause::kIllegalInstruction);
  EXPECT_EQ(res.trap.pc, kBase);
  EXPECT_NE(res.trap_message.find("illegal"), std::string::npos);
}

TEST(IssTrap, WatchdogKillsTightLoop) {
  iss::Memory mem(1u << 20);
  assembler::ProgramBuilder b(kBase);
  auto loop = b.make_label();
  b.bind(loop);
  b.jal(kZero, loop);  // spin forever
  const auto prog = b.build();
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);

  iss::RunLimits limits;
  limits.max_cycles = 1000;
  const auto res = core.run(limits);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kWatchdog);
  EXPECT_EQ(res.trap.cause, iss::TrapCause::kWatchdog);
  EXPECT_EQ(res.trap.pc, kBase);
  EXPECT_FALSE(res.ok());
  // Every instruction costs at least one cycle, so the watchdog fires within
  // one instruction of the limit.
  EXPECT_GE(res.cycles, limits.max_cycles);
  EXPECT_LT(res.cycles, limits.max_cycles + 8);
  EXPECT_NE(res.describe().find("watchdog"), std::string::npos);
}

TEST(IssTrap, InstructionCapHasNoTrapRecord) {
  iss::Memory mem(1u << 20);
  assembler::ProgramBuilder b(kBase);
  auto loop = b.make_label();
  b.bind(loop);
  b.jal(kZero, loop);
  const auto prog = b.build();
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);

  const auto res = core.run(100);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kMaxInstrs);
  EXPECT_EQ(res.trap.cause, iss::TrapCause::kNone);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.instrs, 100u);
}

TEST(IssTrap, MemoryTrapsCarryStructuredAddress) {
  uint32_t trap_pc = 0;
  auto h = run_asm([&](ProgramBuilder& b) {
    b.li(kA0, kData + 2);
    trap_pc = kBase + 4 * static_cast<uint32_t>(b.position());
    b.lw(kA1, 0, kA0);
  });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(h.result.trap.cause, iss::TrapCause::kMemMisaligned);
  EXPECT_EQ(h.result.trap.pc, trap_pc);
  EXPECT_EQ(h.result.trap.addr, kData + 2);
}

TEST(IssTrap, CoreIsResumableAfterTrap) {
  // The faulting instruction does not retire and pc stays put, so a harness
  // can repair state and resume: fix the misaligned base and run again.
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData + 1);
    b.lw(kA1, 0, kA0);
    b.addi(kA2, kA1, 1);
  });
  ASSERT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  const uint32_t fault_pc = h.result.trap.pc;

  h.mem->store32(kData, 41);
  h.core->set_reg(kA0, kData);
  const auto res2 = h.core->run(100);
  EXPECT_EQ(res2.exit, iss::RunResult::Exit::kEbreak) << res2.trap_message;
  EXPECT_EQ(h.core->reg(kA1), 41u);
  EXPECT_EQ(h.core->reg(kA2), 42u);
  // The resumed run re-executed from the faulting pc.
  EXPECT_GT(res2.instrs, 0u);
  EXPECT_EQ(fault_pc, h.result.trap.pc);
}

TEST(IssTrap, DescribeNamesTheCause) {
  auto h = run_asm([](ProgramBuilder& b) { b.csrrs(kA0, 0x123, kZero); });
  const std::string d = h.result.describe();
  EXPECT_NE(d.find("csr-unimplemented"), std::string::npos) << d;
  EXPECT_NE(d.find("pc=0x"), std::string::npos) << d;
}

}  // namespace
}  // namespace rnnasip
