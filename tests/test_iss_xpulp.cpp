// Xpulp extension semantics: post-increment load/store, hardware loops
// (including nesting), mac/clip/minmax, packed SIMD with randomized
// lane-wise property checks against golden C++ semantics.
#include <gtest/gtest.h>

#include "src/common/bits.h"
#include "src/common/rng.h"
#include "tests/iss_testutil.h"

namespace rnnasip {
namespace {

using assembler::ProgramBuilder;
using iss_test::expect_ok;
using iss_test::run_asm;
using namespace isa;

constexpr uint32_t kData = 0x8000;

TEST(IssXpulp, PostIncrementLoad) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        b.p_lh(kA1, 2, kA0);
        b.p_lh(kA2, 2, kA0);
        b.p_lw(kA3, 4, kA0);
      },
      [](iss::Core&, iss::Memory& m) {
        m.store16(kData, 0xFFFF);      // -1
        m.store16(kData + 2, 0x0002);  // 2
        m.store32(kData + 4, 0xCAFEBABE);
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), -1);
  EXPECT_EQ(h.core->reg(kA2), 2u);
  EXPECT_EQ(h.core->reg(kA3), 0xCAFEBABEu);
  EXPECT_EQ(h.core->reg(kA0), kData + 8u);  // 2 + 2 + 4
}

TEST(IssXpulp, PostIncrementStore) {
  auto h = run_asm([](ProgramBuilder& b) {
    b.li(kA0, kData);
    b.li(kA1, 7);
    b.li(kA2, -9);
    b.p_sh(kA1, 2, kA0);
    b.p_sh(kA2, 2, kA0);
    b.p_sw(kA1, 4, kA0);
  });
  expect_ok(h);
  EXPECT_EQ(h.mem->load16(kData), 7u);
  EXPECT_EQ(static_cast<int16_t>(h.mem->load16(kData + 2)), -9);
  EXPECT_EQ(h.mem->load32(kData + 4), 7u);
  EXPECT_EQ(h.core->reg(kA0), kData + 8u);
}

TEST(IssXpulp, HardwareLoopSetupi) {
  // Sum 1..10 with a zero-overhead loop.
  auto h = run_asm([](ProgramBuilder& b) {
    auto end = b.make_label();
    b.li(kA0, 0);  // sum
    b.li(kA1, 0);  // i
    b.lp_setupi(0, 10, end);
    b.addi(kA1, kA1, 1);
    b.add(kA0, kA0, kA1);
    b.bind(end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 55u);
  EXPECT_EQ(h.core->reg(kA1), 10u);
  EXPECT_EQ(h.core->hw_loop(0).count, 0u);
}

TEST(IssXpulp, HardwareLoopSetupWithRegisterCount) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto end = b.make_label();
    b.li(kA0, 0);
    b.li(kT0, 1000);  // count > 12-bit immediates handled via register
    b.lp_setup(0, kT0, end);
    b.addi(kA0, kA0, 3);
    b.bind(end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 3000u);
}

TEST(IssXpulp, HardwareLoopCountOne) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto end = b.make_label();
    b.li(kA0, 0);
    b.lp_setupi(0, 1, end);
    b.addi(kA0, kA0, 1);
    b.bind(end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 1u);
}

TEST(IssXpulp, NestedHardwareLoops) {
  // Outer loop L1 x5, inner loop L0 x4: 20 increments plus 5 outer ticks.
  auto h = run_asm([](ProgramBuilder& b) {
    auto outer_end = b.make_label();
    auto inner_end = b.make_label();
    b.li(kA0, 0);
    b.li(kA1, 0);
    b.lp_setupi(1, 5, outer_end);
    b.lp_setupi(0, 4, inner_end);
    b.addi(kA0, kA0, 1);
    b.bind(inner_end);
    // NOTE: RI5CY requires the L0 end != L1 end; the outer tick below also
    // serves as that separation.
    b.addi(kA1, kA1, 1);
    b.bind(outer_end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 20u);
  EXPECT_EQ(h.core->reg(kA1), 5u);
}

TEST(IssXpulp, HardwareLoopExplicitStartEndCount) {
  auto h = run_asm([](ProgramBuilder& b) {
    auto start = b.make_label();
    auto end = b.make_label();
    b.li(kA0, 0);
    b.lp_starti(0, start);
    b.lp_endi(0, end);
    b.lp_counti(0, 7);
    b.bind(start);
    b.addi(kA0, kA0, 2);
    b.bind(end);
  });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA0), 14u);
}

TEST(IssXpulp, MacMsu) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.p_mac(kA2, kA0, kA1);
        b.p_mac(kA2, kA0, kA1);
        b.p_msu(kA3, kA0, kA1);
      },
      [](iss::Core& c, iss::Memory&) {
        c.set_reg(kA0, static_cast<uint32_t>(-3));
        c.set_reg(kA1, 7);
        c.set_reg(kA2, 100);
        c.set_reg(kA3, 100);
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA2)), 100 - 21 - 21);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), 100 + 21);
}

TEST(IssXpulp, ClipAndExtend) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.p_clip(kA1, kA0, 16);   // to signed 16-bit range
        b.p_clipu(kA2, kA0, 16);  // to [0, 2^15-1]
        b.p_exths(kA3, kA0);
        b.p_exthz(kA4, kA0);
        b.p_abs(kA5, kA0);
      },
      [](iss::Core& c, iss::Memory&) { c.set_reg(kA0, static_cast<uint32_t>(-70000)); });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA1)), -32768);
  EXPECT_EQ(h.core->reg(kA2), 0u);
  // -70000 = 0xFFFEEE90 -> low half 0xEE90 = -4464 signed.
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), -4464);
  EXPECT_EQ(h.core->reg(kA4), 0xEE90u);
  EXPECT_EQ(h.core->reg(kA5), 70000u);
}

TEST(IssXpulp, MinMax) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.p_min(kA2, kA0, kA1);
        b.p_max(kA3, kA0, kA1);
        b.p_minu(kA4, kA0, kA1);
        b.p_maxu(kA5, kA0, kA1);
      },
      [](iss::Core& c, iss::Memory&) {
        c.set_reg(kA0, static_cast<uint32_t>(-5));
        c.set_reg(kA1, 3);
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA2)), -5);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), 3);
  EXPECT_EQ(h.core->reg(kA4), 3u);               // unsigned: 0xFFFFFFFB > 3
  EXPECT_EQ(h.core->reg(kA5), 0xFFFFFFFBu);
}

// ---- packed SIMD property sweeps ----

struct SimdCase {
  const char* name;
  void (ProgramBuilder::*emit)(Reg, Reg, Reg);
  int16_t (*lane)(int16_t, int16_t);
};

class IssSimdLanewise : public ::testing::TestWithParam<SimdCase> {};

TEST_P(IssSimdLanewise, MatchesGoldenLanes) {
  const auto& p = GetParam();
  Rng rng(0xBEEF);
  for (int i = 0; i < 64; ++i) {
    const uint32_t va = rng.next_u32();
    const uint32_t vb = rng.next_u32();
    auto h = run_asm(
        [&](ProgramBuilder& b) { (b.*p.emit)(kA2, kA0, kA1); },
        [&](iss::Core& c, iss::Memory&) {
          c.set_reg(kA0, va);
          c.set_reg(kA1, vb);
        });
    expect_ok(h);
    const uint32_t expect = pack_halves(p.lane(half_lo(va), half_lo(vb)),
                                        p.lane(half_hi(va), half_hi(vb)));
    EXPECT_EQ(h.core->reg(kA2), expect) << p.name << " a=" << va << " b=" << vb;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PvH, IssSimdLanewise,
    ::testing::Values(
        SimdCase{"add", &ProgramBuilder::pv_add_h,
                 [](int16_t a, int16_t b) { return static_cast<int16_t>(a + b); }},
        SimdCase{"sub", &ProgramBuilder::pv_sub_h,
                 [](int16_t a, int16_t b) { return static_cast<int16_t>(a - b); }},
        SimdCase{"avg", &ProgramBuilder::pv_avg_h,
                 [](int16_t a, int16_t b) { return static_cast<int16_t>((a + b) >> 1); }},
        SimdCase{"min", &ProgramBuilder::pv_min_h,
                 [](int16_t a, int16_t b) { return a < b ? a : b; }},
        SimdCase{"max", &ProgramBuilder::pv_max_h,
                 [](int16_t a, int16_t b) { return a > b ? a : b; }},
        SimdCase{"sra", &ProgramBuilder::pv_sra_h,
                 [](int16_t a, int16_t b) { return static_cast<int16_t>(a >> (b & 15)); }}),
    [](const ::testing::TestParamInfo<SimdCase>& i) { return i.param.name; });

TEST(IssSimd, DotProducts) {
  Rng rng(0xD07);
  for (int i = 0; i < 200; ++i) {
    const uint32_t va = rng.next_u32();
    const uint32_t vb = rng.next_u32();
    const int32_t acc0 = static_cast<int32_t>(rng.next_u32());
    auto h = run_asm(
        [&](ProgramBuilder& b) {
          b.pv_dotsp_h(kA2, kA0, kA1);
          b.pv_sdotsp_h(kA3, kA0, kA1);
        },
        [&](iss::Core& c, iss::Memory&) {
          c.set_reg(kA0, va);
          c.set_reg(kA1, vb);
          c.set_reg(kA3, static_cast<uint32_t>(acc0));
        });
    expect_ok(h);
    // Accumulate in uint32: the hardware wraps mod 2^32, and the sum of two
    // halfword products (and the running accumulator) can exceed INT32_MAX.
    const uint32_t dot =
        static_cast<uint32_t>(static_cast<int32_t>(half_lo(va)) * half_lo(vb)) +
        static_cast<uint32_t>(static_cast<int32_t>(half_hi(va)) * half_hi(vb));
    EXPECT_EQ(h.core->reg(kA2), dot);
    EXPECT_EQ(h.core->reg(kA3), static_cast<uint32_t>(acc0) + dot);
  }
}

TEST(IssSimd, ByteDotProduct) {
  auto h = run_asm(
      [](ProgramBuilder& b) { b.pv_sdotsp_b(kA2, kA0, kA1); },
      [](iss::Core& c, iss::Memory&) {
        // lanes a = [1, -2, 3, -4], b = [10, 20, 30, 40]
        c.set_reg(kA0, 0xFC03FE01u);
        c.set_reg(kA1, 0x281E140Au);
        c.set_reg(kA2, 5);
      });
  expect_ok(h);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA2)), 5 + 10 - 40 + 90 - 160);
}

TEST(IssSimd, PackExtractInsert) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.pv_pack_h(kA2, kA0, kA1);     // hi = a.lo, lo = b.lo
        b.pv_extract_h(kA3, kA2, 1);    // sign-extended hi lane
        b.pv_insert_h(kA4, kA0, 0);     // lo lane <- a.lo
      },
      [](iss::Core& c, iss::Memory&) {
        c.set_reg(kA0, pack_halves(static_cast<int16_t>(-3), 77));
        c.set_reg(kA1, pack_halves(1234, 42));
        c.set_reg(kA4, pack_halves(5, 6));
      });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA2), pack_halves(1234, -3));
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), -3);
  EXPECT_EQ(h.core->reg(kA4), pack_halves(-3, 6));
}

TEST(IssXpulp, RegisterRegisterPostIncrementLoad) {
  auto h = run_asm(
      [](ProgramBuilder& b) {
        b.li(kA0, kData);
        b.li(kA1, 8);             // stride register
        b.p_lw_rr(kA2, kA1, kA0);  // a2 = mem[a0]; a0 += 8
        b.p_lh_rr(kA3, kA1, kA0);  // a3 = mem16[a0]; a0 += 8
      },
      [](iss::Core&, iss::Memory& m) {
        m.store32(kData, 0x12345678);
        m.store16(kData + 8, 0xFFFE);  // -2
      });
  expect_ok(h);
  EXPECT_EQ(h.core->reg(kA2), 0x12345678u);
  EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA3)), -2);
  EXPECT_EQ(h.core->reg(kA0), kData + 16u);
}

TEST(IssXpulp, ScalarReplicationSimd) {
  Rng rng(0x5C);
  for (int i = 0; i < 100; ++i) {
    const uint32_t va = rng.next_u32();
    const uint32_t vb = rng.next_u32();
    const int16_t scalar = half_lo(vb);
    auto h = run_asm(
        [&](ProgramBuilder& b) {
          b.pv_add_sc_h(kA2, kA0, kA1);
          b.pv_sub_sc_h(kA3, kA0, kA1);
          b.pv_max_sc_h(kA4, kA0, kA1);
          b.pv_sdotsp_sc_h(kA5, kA0, kA1);
        },
        [&](iss::Core& c, iss::Memory&) {
          c.set_reg(kA0, va);
          c.set_reg(kA1, vb);
          c.set_reg(kA5, 100);
        });
    expect_ok(h);
    EXPECT_EQ(h.core->reg(kA2),
              pack_halves(static_cast<int16_t>(half_lo(va) + scalar),
                          static_cast<int16_t>(half_hi(va) + scalar)));
    EXPECT_EQ(h.core->reg(kA3),
              pack_halves(static_cast<int16_t>(half_lo(va) - scalar),
                          static_cast<int16_t>(half_hi(va) - scalar)));
    EXPECT_EQ(h.core->reg(kA4),
              pack_halves(std::max(half_lo(va), scalar), std::max(half_hi(va), scalar)));
    EXPECT_EQ(static_cast<int32_t>(h.core->reg(kA5)),
              100 + half_lo(va) * scalar + half_hi(va) * scalar);
  }
}

TEST(IssXpulp, FeatureGateTrapsWhenDisabled) {
  iss::Core::Config cfg;
  cfg.has_xpulp = false;
  auto h = run_asm([](ProgramBuilder& b) { b.p_mac(kA0, kA1, kA2); }, {}, cfg);
  EXPECT_EQ(h.result.exit, iss::RunResult::Exit::kTrap);
  EXPECT_NE(h.result.trap_message.find("Xpulp"), std::string::npos);
}

}  // namespace
}  // namespace rnnasip
