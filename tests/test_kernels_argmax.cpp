// Argmax kernel tests: agreement with std::max_element (first-max ties)
// over randomized vectors at every level, edge shapes, and use as a
// network's final stage.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/argmax.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernels::OptLevel;

int run_argmax(const std::vector<int16_t>& v, OptLevel level) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  kernels::ArgmaxLayout L;
  L.in_addr = 0x20000;
  L.out_addr = 0x30000;
  L.count = static_cast<int>(v.size());
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::emit_argmax(b, L, level);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  mem.write_halves(L.in_addr, v);
  core.reset(prog.base);
  EXPECT_TRUE(core.run().ok());
  return static_cast<int16_t>(mem.load16(L.out_addr));
}

TEST(ArgmaxKernel, MatchesMaxElementAcrossLevelsAndSizes) {
  Rng rng(0xA29);
  for (auto level : kernels::kAllOptLevels) {
    for (int n : {1, 2, 3, 7, 16, 100}) {
      std::vector<int16_t> v(static_cast<size_t>(n));
      for (auto& x : v) x = rng.next_i16();
      const int got = run_argmax(v, level);
      const int want =
          static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
      ASSERT_EQ(got, want) << "level " << kernels::opt_level_letter(level) << " n=" << n;
    }
  }
}

TEST(ArgmaxKernel, FirstMaximumWinsTies) {
  EXPECT_EQ(run_argmax({5, 9, 9, 2}, OptLevel::kInputTiling), 1);
  EXPECT_EQ(run_argmax({-3, -3, -3}, OptLevel::kBaseline), 0);
  EXPECT_EQ(run_argmax({int16_t{-32768}, int16_t{32767}, int16_t{32767}},
                       OptLevel::kXpulpSimd),
            1);
}

TEST(ArgmaxKernel, AsNetworkFinalStage) {
  Rng rng(0xA2A);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 16, 6, nn::ActKind::kNone));
  auto d = kernel_test::make_net(OptLevel::kInputTiling,
                                 [&](kernels::NetworkProgramBuilder& b) {
                                   b.add_fc(fc);
                                   b.add_argmax();
                                 });
  for (int trial = 0; trial < 5; ++trial) {
    const auto x = nn::quantize_vector(nn::random_vector(rng, 16, 1.0f));
    const auto out = kernels::run_forward(*d.core, *d.mem, d.net, x);
    ASSERT_EQ(out.size(), 1u);
    const auto q =
        nn::fc_forward_fixp(fc, x, d.core->tanh_table(), d.core->sig_table());
    const int want = static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
    EXPECT_EQ(out[0], want) << trial;
  }
}

}  // namespace
}  // namespace rnnasip
