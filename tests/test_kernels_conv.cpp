// Conv kernel tests: direct (level a) and im2col-lowered (levels b-e)
// generated code vs the fixed-point golden model, plus conv -> FC chains.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernel_test::make_net;
using kernels::OptLevel;
using nn::ActKind;

struct ConvCase {
  int in_ch, out_ch, k, h, w, stride;
  OptLevel level;
};

class ConvKernel : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvKernel, BitExactVsGoldenModel) {
  const auto& p = GetParam();
  Rng rng(0xC0 + p.in_ch * 31 + p.out_ch + p.k * 5 + static_cast<int>(p.level));
  const auto cf = nn::random_conv(rng, p.in_ch, p.out_ch, p.k, ActKind::kReLU, p.stride);
  const auto cq = nn::quantize_conv(cf);

  auto d = make_net(p.level, [&](kernels::NetworkProgramBuilder& b) {
    b.add_conv(cq, p.h, p.w);
  });

  const auto in_f = nn::random_tensor(rng, p.in_ch, p.h, p.w);
  const auto in_q = nn::quantize_tensor(in_f);
  const auto got = kernels::run_forward(*d.core, *d.mem, d.net, in_q.data);
  const auto want = nn::conv2d_forward_fixp(cq, in_q);
  ASSERT_EQ(got.size(), want.data.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want.data[i]) << "flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvKernel,
    ::testing::Values(ConvCase{1, 4, 3, 8, 8, 1, OptLevel::kBaseline},
                      ConvCase{1, 4, 3, 8, 8, 1, OptLevel::kXpulpSimd},
                      ConvCase{1, 4, 3, 8, 8, 1, OptLevel::kOutputTiling},
                      ConvCase{1, 4, 3, 8, 8, 1, OptLevel::kLoadCompute},
                      ConvCase{1, 4, 3, 8, 8, 1, OptLevel::kInputTiling},
                      ConvCase{3, 6, 3, 10, 10, 1, OptLevel::kBaseline},
                      ConvCase{3, 6, 3, 10, 10, 1, OptLevel::kOutputTiling},
                      ConvCase{3, 6, 3, 10, 10, 1, OptLevel::kInputTiling},
                      ConvCase{2, 3, 1, 6, 6, 1, OptLevel::kLoadCompute},  // 1x1 conv
                      ConvCase{2, 5, 3, 9, 9, 2, OptLevel::kBaseline},     // stride 2
                      ConvCase{2, 5, 3, 9, 9, 2, OptLevel::kInputTiling}),
    [](const ::testing::TestParamInfo<ConvCase>& i) {
      return std::string(1, kernels::opt_level_letter(i.param.level)) + "_" +
             std::to_string(i.param.in_ch) + "to" + std::to_string(i.param.out_ch) + "k" +
             std::to_string(i.param.k) + "s" + std::to_string(i.param.stride);
    });

TEST(ConvKernelLevels, AllLevelsAgreeBitExactly) {
  Rng rng(0xCCC);
  const auto cq = nn::quantize_conv(nn::random_conv(rng, 2, 4, 3, ActKind::kReLU));
  const auto in_q = nn::quantize_tensor(nn::random_tensor(rng, 2, 7, 7));
  std::vector<int16_t> first;
  for (auto level : kernels::kAllOptLevels) {
    auto d = make_net(level,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_conv(cq, 7, 7); });
    const auto out = kernels::run_forward(*d.core, *d.mem, d.net, in_q.data);
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(out, first) << "level " << kernels::opt_level_letter(level);
    }
  }
}

TEST(ConvKernel, ConvThenFcChainBitExact) {
  // lee18-style: conv stack flattened into FC heads.
  Rng rng(0xC0FE);
  const auto c1 = nn::quantize_conv(nn::random_conv(rng, 1, 4, 3, ActKind::kReLU));
  const auto c2 = nn::quantize_conv(nn::random_conv(rng, 4, 4, 3, ActKind::kReLU));
  // After two valid 3x3 convs on 10x10: 4 x 6 x 6 = 144 flat features.
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 144, 10, ActKind::kNone));

  for (auto level : {OptLevel::kBaseline, OptLevel::kLoadCompute}) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) {
      b.add_conv(c1, 10, 10);
      b.add_conv(c2, 8, 8);
      b.add_fc(fc);
    });
    const auto in_q = nn::quantize_tensor(nn::random_tensor(rng, 1, 10, 10));
    const auto got = kernels::run_forward(*d.core, *d.mem, d.net, in_q.data);

    const auto t1 = nn::conv2d_forward_fixp(c1, in_q);
    const auto t2 = nn::conv2d_forward_fixp(c2, t1);
    const auto want =
        nn::fc_forward_fixp(fc, t2.data, d.core->tanh_table(), d.core->sig_table());
    ASSERT_EQ(got, want) << "level " << kernels::opt_level_letter(level);
  }
}

TEST(ConvKernelCycles, LoweredBeatsDirectBaseline) {
  Rng rng(0xFA57);
  const auto cq = nn::quantize_conv(nn::random_conv(rng, 2, 8, 3, ActKind::kNone));
  const auto in_q = nn::quantize_tensor(nn::random_tensor(rng, 2, 12, 12));
  uint64_t base = 0, opt = 0;
  for (auto level : {OptLevel::kBaseline, OptLevel::kInputTiling}) {
    auto d = make_net(level,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_conv(cq, 12, 12); });
    kernels::run_forward(*d.core, *d.mem, d.net, in_q.data);
    (level == OptLevel::kBaseline ? base : opt) = d.core->stats().total_cycles();
  }
  EXPECT_GT(static_cast<double>(base) / static_cast<double>(opt), 5.0);
}

}  // namespace
}  // namespace rnnasip
