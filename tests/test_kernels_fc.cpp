// FC kernel generator tests: bit-exactness against the fixed-point golden
// model at every optimization level across a grid of shapes/activations,
// ISA-level discipline per level, and the cycle ordering a -> e.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nn/layers.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernel_test::make_net;
using kernels::OptLevel;
using nn::ActKind;

struct FcCase {
  int cin, cout;
  ActKind act;
  OptLevel level;
};

activation::PlaTable d_tanh() {
  return activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
}
activation::PlaTable d_sig() {
  return activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
}

std::string case_name(const ::testing::TestParamInfo<FcCase>& info) {
  const char* act = "none";
  if (info.param.act == ActKind::kReLU) act = "relu";
  if (info.param.act == ActKind::kTanh) act = "tanh";
  if (info.param.act == ActKind::kSigmoid) act = "sig";
  return std::string(1, kernels::opt_level_letter(info.param.level)) + "_" +
         std::to_string(info.param.cin) + "x" + std::to_string(info.param.cout) + "_" + act;
}

class FcKernel : public ::testing::TestWithParam<FcCase> {};

TEST_P(FcKernel, BitExactVsGoldenModel) {
  const auto& p = GetParam();
  Rng rng(0xFC0 + p.cin * 131 + p.cout * 17 + static_cast<int>(p.level));
  const auto fc_f = nn::random_fc(rng, p.cin, p.cout, p.act);
  const auto fc_q = nn::quantize_fc(fc_f);

  auto d = make_net(p.level, [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });

  for (int trial = 0; trial < 3; ++trial) {
    const auto x_q = nn::quantize_vector(nn::random_vector(rng, p.cin, 1.0f));
    const auto got = kernels::run_forward(*d.core, *d.mem, d.net, x_q);
    const auto want =
        nn::fc_forward_fixp(fc_q, x_q, d.core->tanh_table(), d.core->sig_table());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "output " << i << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FcKernel,
    ::testing::Values(
        // Small, odd-output, tail-exercising, and large shapes per level.
        FcCase{8, 4, ActKind::kNone, OptLevel::kBaseline},
        FcCase{8, 4, ActKind::kNone, OptLevel::kXpulpSimd},
        FcCase{8, 4, ActKind::kNone, OptLevel::kOutputTiling},
        FcCase{8, 4, ActKind::kNone, OptLevel::kLoadCompute},
        FcCase{8, 4, ActKind::kNone, OptLevel::kInputTiling},
        FcCase{30, 7, ActKind::kReLU, OptLevel::kBaseline},
        FcCase{30, 7, ActKind::kReLU, OptLevel::kXpulpSimd},
        FcCase{30, 7, ActKind::kReLU, OptLevel::kOutputTiling},
        FcCase{30, 7, ActKind::kReLU, OptLevel::kLoadCompute},
        FcCase{32, 7, ActKind::kReLU, OptLevel::kInputTiling},
        FcCase{64, 10, ActKind::kTanh, OptLevel::kBaseline},
        FcCase{64, 10, ActKind::kTanh, OptLevel::kXpulpSimd},
        FcCase{64, 10, ActKind::kTanh, OptLevel::kOutputTiling},
        FcCase{64, 10, ActKind::kTanh, OptLevel::kLoadCompute},
        FcCase{64, 10, ActKind::kTanh, OptLevel::kInputTiling},
        FcCase{50, 9, ActKind::kSigmoid, OptLevel::kBaseline},
        FcCase{50, 9, ActKind::kSigmoid, OptLevel::kXpulpSimd},
        FcCase{50, 9, ActKind::kSigmoid, OptLevel::kOutputTiling},
        FcCase{50, 10, ActKind::kSigmoid, OptLevel::kLoadCompute},
        FcCase{48, 10, ActKind::kSigmoid, OptLevel::kInputTiling},
        FcCase{200, 80, ActKind::kReLU, OptLevel::kBaseline},
        FcCase{200, 80, ActKind::kReLU, OptLevel::kXpulpSimd},
        FcCase{200, 80, ActKind::kReLU, OptLevel::kOutputTiling},
        FcCase{200, 80, ActKind::kReLU, OptLevel::kLoadCompute},
        FcCase{200, 80, ActKind::kReLU, OptLevel::kInputTiling},
        // Edge shapes.
        FcCase{2, 1, ActKind::kNone, OptLevel::kBaseline},
        FcCase{2, 1, ActKind::kNone, OptLevel::kXpulpSimd},
        FcCase{2, 1, ActKind::kNone, OptLevel::kOutputTiling},
        FcCase{2, 1, ActKind::kNone, OptLevel::kLoadCompute},
        FcCase{4, 1, ActKind::kNone, OptLevel::kInputTiling},
        FcCase{6, 3, ActKind::kReLU, OptLevel::kLoadCompute},  // odd tail
        FcCase{12, 2, ActKind::kNone, OptLevel::kInputTiling},
        FcCase{10, 2, ActKind::kNone, OptLevel::kInputTiling}  // cin % 4 != 0
        ),
    case_name);

TEST(FcKernelLevels, AllLevelsAgreeBitExactly) {
  // The paper's claim: the optimizations do not change numerical results.
  Rng rng(0xABCDEF);
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, 96, 24, ActKind::kTanh));
  const auto x_q = nn::quantize_vector(nn::random_vector(rng, 96, 1.0f));
  std::vector<int16_t> first;
  for (auto level : kernels::kAllOptLevels) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
    auto out = kernels::run_forward(*d.core, *d.mem, d.net, x_q);
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(out, first) << "level " << kernels::opt_level_letter(level);
    }
  }
}

TEST(FcKernelLevels, FixedPointTracksFloatReference) {
  Rng rng(0x600D);
  const auto fc_f = nn::random_fc(rng, 64, 16, ActKind::kTanh, 0.2f);
  const auto fc_q = nn::quantize_fc(fc_f);
  const auto x_f = nn::random_vector(rng, 64, 1.0f);
  const auto x_q = nn::quantize_vector(x_f);

  auto d = make_net(OptLevel::kInputTiling,
                    [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
  const auto got = kernels::run_forward(*d.core, *d.mem, d.net, x_q);
  const auto ref = nn::fc_forward(fc_f, x_f);
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    // Quantization noise of a 64-long Q3.12 dot product plus PLA error.
    EXPECT_NEAR(dequantize(got[i]), ref[i], 0.02) << i;
  }
}

TEST(FcKernelIsa, BaselineUsesOnlyBaselineInstructions) {
  Rng rng(1);
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, 16, 4, ActKind::kNone));
  auto d = make_net(OptLevel::kBaseline,
                    [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
  const auto x_q = nn::quantize_vector(nn::random_vector(rng, 16, 1.0f));
  kernels::run_forward(*d.core, *d.mem, d.net, x_q);
  for (const auto& [op, stat] : d.core->stats().by_opcode()) {
    // Only the mac the paper's Table Ia lists is allowed beyond RV32IM.
    const bool xpulp = op >= isa::Opcode::kPLb && op <= isa::Opcode::kPvSdotspB;
    const bool rnn = op >= isa::Opcode::kPlSdotspH0 && op <= isa::Opcode::kPlSig;
    EXPECT_FALSE(rnn) << isa::mnemonic(op);
    if (xpulp) {
      EXPECT_EQ(op, isa::Opcode::kPMac) << isa::mnemonic(op);
    }
  }
}

TEST(FcKernelIsa, LoadComputeLevelUsesPlSdotsp) {
  Rng rng(2);
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, 32, 8, ActKind::kNone));
  auto d = make_net(OptLevel::kLoadCompute,
                    [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
  kernels::run_forward(*d.core, *d.mem, d.net,
                       nn::quantize_vector(nn::random_vector(rng, 32, 1.0f)));
  const auto& s = d.core->stats().by_opcode();
  EXPECT_GT(s.count(isa::Opcode::kPlSdotspH0), 0u);
  EXPECT_GT(s.count(isa::Opcode::kPlSdotspH1), 0u);
  // Weight loads are folded: the only packed loads left are the x stream.
  const auto it = s.find(isa::Opcode::kPLw);
  ASSERT_NE(it, s.end());
  EXPECT_LE(it->second.instrs, 32u / 2u + 4u);
}

TEST(FcKernelCycles, EachLevelIsFasterOnALargeLayer) {
  Rng rng(3);
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, 200, 80, ActKind::kNone));
  const auto x_q = nn::quantize_vector(nn::random_vector(rng, 200, 1.0f));
  uint64_t prev = UINT64_MAX;
  for (auto level : kernels::kAllOptLevels) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
    kernels::run_forward(*d.core, *d.mem, d.net, x_q);
    const uint64_t cycles = d.core->stats().total_cycles();
    EXPECT_LT(cycles, prev) << "level " << kernels::opt_level_letter(level)
                            << " not faster than its predecessor";
    prev = cycles;
  }
}

TEST(FcKernelCycles, BaselineMatchesTableIaShape) {
  // ~9 cycles per MAC: 8 instructions with a 2-cycle bltu (Table Ia).
  Rng rng(4);
  const int cin = 128, cout = 32;
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, cin, cout, ActKind::kNone));
  auto d = make_net(OptLevel::kBaseline,
                    [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
  kernels::run_forward(*d.core, *d.mem, d.net,
                       nn::quantize_vector(nn::random_vector(rng, cin, 1.0f)));
  const double cyc_per_mac =
      static_cast<double>(d.core->stats().total_cycles()) / (cin * cout);
  EXPECT_GT(cyc_per_mac, 8.5);
  EXPECT_LT(cyc_per_mac, 9.8);
}

TEST(FcKernelCycles, SpeedupVsBaselineIsInPaperBand) {
  // On a large FC layer the full extension stack lands around the paper's
  // ~15x speedup (Table I / Fig. 3 band for large FC networks).
  Rng rng(5);
  const int cin = 320, cout = 64;
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, cin, cout, ActKind::kNone));
  const auto x_q = nn::quantize_vector(nn::random_vector(rng, cin, 1.0f));
  uint64_t base = 0, best = 0;
  for (auto level : {kernels::OptLevel::kBaseline, kernels::OptLevel::kInputTiling}) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc_q); });
    kernels::run_forward(*d.core, *d.mem, d.net, x_q);
    (level == kernels::OptLevel::kBaseline ? base : best) =
        d.core->stats().total_cycles();
  }
  const double speedup = static_cast<double>(base) / static_cast<double>(best);
  EXPECT_GT(speedup, 11.0);
  EXPECT_LT(speedup, 20.0);
}

TEST(FcKernel, AlternativeQFormatsBitExact) {
  // frac_bits != 12 (Q5.10 and Q7.8 here): the kernel's requantization
  // shift follows the layout and matches the golden model bit-exactly.
  Rng rng(0x0F1);
  for (int frac : {8, 10, 14}) {
    const QFormat fmt{15 - frac, frac};
    const auto fc_f = nn::random_fc(rng, 32, 8, ActKind::kReLU, 0.25f);
    nn::FcParamsQ fc_q;
    fc_q.w = nn::quantize_matrix(fc_f.w, fmt);
    fc_q.b = nn::quantize_vector(fc_f.b, fmt);
    fc_q.act = fc_f.act;
    const auto x_q = nn::quantize_vector(nn::random_vector(rng, 32, 1.0f), fmt);

    iss::Memory mem(8u << 20);
    iss::Core core(&mem);
    kernels::DeviceAllocator alloc(&mem);
    const uint32_t xa = alloc.alloc(2 * 32, 4);
    const uint32_t oa = alloc.alloc(2 * 8, 4);
    const auto L = kernels::alloc_fc(alloc, fc_q, xa, oa, frac);
    assembler::ProgramBuilder b(kernels::kTextBase);
    kernels::FcEmitOptions fo;
    fo.level = OptLevel::kInputTiling;
    kernels::emit_fc(b, L, fo);
    b.ebreak();
    const auto prog = b.build();
    core.load_program(prog);
    mem.write_halves(xa, x_q);
    core.reset(prog.base);
    ASSERT_TRUE(core.run().ok());
    const auto got = mem.read_halves(oa, 8);
    const auto want = nn::fc_forward_fixp(fc_q, x_q, d_tanh(), d_sig(), frac);
    EXPECT_EQ(got, want) << "frac_bits=" << frac;
  }
}

TEST(FcKernel, TanhAtNonQ312FormatRejected) {
  iss::Memory mem(1u << 20);
  kernels::DeviceAllocator alloc(&mem);
  Rng rng(0x0F2);
  const auto fc_q = nn::quantize_fc(nn::random_fc(rng, 8, 4, ActKind::kTanh));
  EXPECT_THROW(kernels::alloc_fc(alloc, fc_q, 0x20000, 0x21000, /*frac_bits=*/10),
               std::runtime_error);
}

TEST(FcKernel, TileSizeRespectsRegisterBudget) {
  kernels::FcLayout L;
  L.cin = 200;
  L.cout = 80;
  L.act = nn::ActKind::kNone;
  kernels::FcEmitOptions opt;
  opt.level = kernels::OptLevel::kOutputTiling;
  EXPECT_GE(kernels::fc_tile_size(L, opt), 4);
  EXPECT_LE(kernels::fc_tile_size(L, opt), 8);
  opt.level = kernels::OptLevel::kLoadCompute;
  EXPECT_EQ(kernels::fc_tile_size(L, opt) % 2, 0);
  L.cout = 3;
  EXPECT_LE(kernels::fc_tile_size(L, opt), 3);
}

}  // namespace
}  // namespace rnnasip
