// INT8 FC kernel tests: bit-exactness vs the int8 golden model, throughput
// advantage over the 16-bit kernel, and the quantization-accuracy ordering
// (int8 worse than int16 but bounded).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/fc.h"
#include "src/kernels/fc8.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip {
namespace {

using nn::ActKind;

struct Run8 {
  std::vector<int8_t> out;
  uint64_t cycles = 0;
};

Run8 run_fc8(const nn::FcParams8& fc, const std::vector<int8_t>& x, int max_tile = 8) {
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t x_addr = alloc.alloc(static_cast<uint32_t>(x.size()) + 4, 4);
  const uint32_t o_addr = alloc.alloc(static_cast<uint32_t>(fc.b.size()) + 4, 4);
  const auto L = kernels::alloc_fc8(alloc, fc, x_addr, o_addr);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::emit_fc8(b, L, max_tile);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  std::vector<uint8_t> xb(x.size());
  for (size_t i = 0; i < x.size(); ++i) xb[i] = static_cast<uint8_t>(x[i]);
  mem.write_block(x_addr, xb);
  core.reset(prog.base);
  const auto res = core.run();
  EXPECT_TRUE(res.ok()) << res.trap_message;
  Run8 r;
  r.cycles = core.stats().total_cycles();
  r.out.resize(fc.b.size());
  for (size_t i = 0; i < r.out.size(); ++i) {
    r.out[i] = static_cast<int8_t>(mem.load8(o_addr + static_cast<uint32_t>(i)));
  }
  return r;
}

struct Fc8Case {
  int cin, cout;
  ActKind act;
  int max_tile;
};

class Fc8Kernel : public ::testing::TestWithParam<Fc8Case> {};

TEST_P(Fc8Kernel, BitExactVsGoldenModel) {
  const auto& p = GetParam();
  Rng rng(0x18BA + p.cin + p.cout * 7);
  const auto fc_f = nn::random_fc(rng, p.cin, p.cout, p.act, 0.4f);
  const auto fc8 = nn::quantize_fc8(fc_f);
  const auto x8 = nn::quantize_vector8(nn::random_vector(rng, p.cin, 1.0f));

  const auto got = run_fc8(fc8, x8, p.max_tile);
  const auto want = nn::fc_forward_fixp8(fc8, x8);
  ASSERT_EQ(got.out.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.out[i], want[i]) << "output " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fc8Kernel,
                         ::testing::Values(Fc8Case{16, 8, ActKind::kNone, 8},
                                           Fc8Case{16, 8, ActKind::kReLU, 8},
                                           Fc8Case{32, 7, ActKind::kReLU, 4},
                                           Fc8Case{64, 10, ActKind::kNone, 8},
                                           Fc8Case{128, 32, ActKind::kReLU, 8},
                                           Fc8Case{8, 1, ActKind::kNone, 8},
                                           Fc8Case{40, 9, ActKind::kNone, 2}),
                         [](const ::testing::TestParamInfo<Fc8Case>& i) {
                           return std::to_string(i.param.cin) + "x" +
                                  std::to_string(i.param.cout) + "t" +
                                  std::to_string(i.param.max_tile) + "a" +
                                  std::to_string(static_cast<int>(i.param.act));
                         });

TEST(Fc8Kernel, RoughlyTwiceTheThroughputOf16Bit) {
  Rng rng(0x18BB);
  const int cin = 256, cout = 32;
  const auto fc_f = nn::random_fc(rng, cin, cout, ActKind::kNone, 0.4f);
  const auto x_f = nn::random_vector(rng, cin, 1.0f);

  const auto r8 = run_fc8(nn::quantize_fc8(fc_f), nn::quantize_vector8(x_f));

  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t x_addr = alloc.alloc(2 * cin, 4);
  const uint32_t o_addr = alloc.alloc(2 * cout, 4);
  const auto L16 = kernels::alloc_fc(alloc, nn::quantize_fc(fc_f), x_addr, o_addr);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::FcEmitOptions fo;
  fo.level = kernels::OptLevel::kOutputTiling;  // same schedule family
  kernels::emit_fc(b, L16, fo);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  mem.write_halves(x_addr, nn::quantize_vector(x_f));
  core.reset(prog.base);
  EXPECT_TRUE(core.run().ok());
  const uint64_t c16 = core.stats().total_cycles();

  const double ratio = static_cast<double>(c16) / static_cast<double>(r8.cycles);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(Fc8Kernel, AccuracyOrderingInt8WorseButBounded) {
  Rng rng(0x18BC);
  const auto fc_f = nn::random_fc(rng, 64, 16, ActKind::kNone, 0.1f);
  const auto x_f = nn::random_vector(rng, 64, 0.8f);
  const auto ref = nn::fc_forward(fc_f, x_f);

  const auto out16 = nn::fc_forward_fixp(
      nn::quantize_fc(fc_f), nn::quantize_vector(x_f),
      activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32}),
      activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32}));
  const auto out8 = nn::fc_forward_fixp8(nn::quantize_fc8(fc_f), nn::quantize_vector8(x_f));

  double err16 = 0, err8 = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    err16 = std::max(err16, std::abs(dequantize(out16[i]) - static_cast<double>(ref[i])));
    err8 = std::max(err8, std::abs(dequantize(out8[i], nn::q1_6) -
                                   static_cast<double>(ref[i])));
  }
  EXPECT_LT(err16, err8);   // 16-bit strictly more accurate
  EXPECT_LT(err8, 0.15);    // but int8 stays usable on this scale
  EXPECT_LT(err16, 0.01);
}

TEST(Fc8Kernel, RejectsBadConfigs) {
  iss::Memory mem(1u << 20);
  kernels::DeviceAllocator alloc(&mem);
  nn::FcParams8 p;
  p.w = nn::Matrix<int8_t>(4, 10);  // cin % 4 != 0
  p.b.resize(4);
  EXPECT_THROW(kernels::alloc_fc8(alloc, p, 0x20000, 0x21000), std::runtime_error);
  p.w = nn::Matrix<int8_t>(4, 8);
  p.act = nn::ActKind::kTanh;  // unsupported on the int8 path
  EXPECT_THROW(kernels::alloc_fc8(alloc, p, 0x20000, 0x21000), std::runtime_error);
}

}  // namespace
}  // namespace rnnasip
