// Batched FC kernel tests: bit-exactness vs the per-sample golden model
// across (cout, batch, activation) shapes, tile selection, and the
// loads-per-MAC advantage over the unbatched kernel.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/fc_batch.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip {
namespace {

using kernels::OptLevel;
using nn::ActKind;

struct BatchRun {
  std::vector<int16_t> out;
  uint64_t cycles = 0;
  uint64_t loads = 0;
  uint64_t macs = 0;
};

BatchRun run_batch(const nn::FcParamsQ& fc, const std::vector<std::vector<int16_t>>& xs,
                   OptLevel level, int max_out_tile = 4, int max_batch_tile = 4) {
  const int cin = fc.w.cols;
  const int cout = fc.w.rows;
  const int batch = static_cast<int>(xs.size());
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t x_addr = alloc.alloc(static_cast<uint32_t>(2 * batch * cin), 4);
  const uint32_t o_addr = alloc.alloc(static_cast<uint32_t>(2 * batch * cout), 4);
  const auto L = kernels::alloc_fc_batch(alloc, fc, batch, x_addr, o_addr);

  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::FcBatchEmitOptions opt;
  opt.level = level;
  opt.max_out_tile = max_out_tile;
  opt.max_batch_tile = max_batch_tile;
  kernels::emit_fc_batch(b, L, opt);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);

  for (int s = 0; s < batch; ++s) {
    mem.write_halves(x_addr + static_cast<uint32_t>(2 * s * cin), xs[static_cast<size_t>(s)]);
  }
  core.reset(prog.base);
  const auto res = core.run();
  EXPECT_TRUE(res.ok()) << res.trap_message;

  BatchRun out;
  out.out = mem.read_halves(o_addr, static_cast<size_t>(batch * cout));
  out.cycles = core.stats().total_cycles();
  out.macs = static_cast<uint64_t>(batch) * cin * cout;
  for (const auto& [op, s] : core.stats().by_opcode()) {
    if (isa::opcode_info(op).unit == isa::Unit::kLoad) out.loads += s.instrs;
  }
  return out;
}

struct BatchCase {
  int cin, cout, batch;
  ActKind act;
};

class FcBatchKernel : public ::testing::TestWithParam<BatchCase> {};

TEST_P(FcBatchKernel, BitExactPerSample) {
  const auto& p = GetParam();
  Rng rng(0xBA7C + p.cin + p.cout * 3 + p.batch * 17);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, p.cin, p.cout, p.act));
  std::vector<std::vector<int16_t>> xs;
  for (int s = 0; s < p.batch; ++s)
    xs.push_back(nn::quantize_vector(nn::random_vector(rng, p.cin, 1.0f)));

  const auto got = run_batch(fc, xs, OptLevel::kOutputTiling);
  const auto tt = activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  const auto st = activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
  for (int s = 0; s < p.batch; ++s) {
    const auto want = nn::fc_forward_fixp(fc, xs[static_cast<size_t>(s)], tt, st);
    for (int j = 0; j < p.cout; ++j) {
      ASSERT_EQ(got.out[static_cast<size_t>(s * p.cout + j)], want[static_cast<size_t>(j)])
          << "sample " << s << " output " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FcBatchKernel,
    ::testing::Values(BatchCase{16, 8, 4, ActKind::kNone},
                      BatchCase{16, 8, 4, ActKind::kReLU},
                      BatchCase{32, 10, 6, ActKind::kTanh},
                      BatchCase{32, 10, 6, ActKind::kSigmoid},
                      BatchCase{24, 7, 5, ActKind::kReLU},   // odd cout + batch tail
                      BatchCase{24, 9, 3, ActKind::kNone},   // odd everything
                      BatchCase{64, 16, 2, ActKind::kNone},
                      BatchCase{10, 1, 4, ActKind::kNone},   // single output
                      BatchCase{100, 20, 8, ActKind::kReLU}),
    [](const ::testing::TestParamInfo<BatchCase>& i) {
      return std::to_string(i.param.cin) + "x" + std::to_string(i.param.cout) + "b" +
             std::to_string(i.param.batch) + "a" + std::to_string(static_cast<int>(i.param.act));
    });

TEST(FcBatchTile, PrefersBalancedTiles) {
  kernels::FcBatchLayout L;
  L.fc.cin = 64;
  L.fc.cout = 16;
  L.batch = 8;
  kernels::FcBatchEmitOptions opt;
  const auto [n, bt] = kernels::fc_batch_tile(L, opt);
  EXPECT_GE(n, 2);
  EXPECT_GE(bt, 2);
  EXPECT_LE(n, opt.max_out_tile);
  EXPECT_LE(bt, opt.max_batch_tile);
}

TEST(FcBatchKernel, FewerLoadsPerMacThanUnbatched) {
  Rng rng(0xBB);
  const int cin = 128, cout = 16, batch = 8;
  const auto fc = nn::quantize_fc(nn::random_fc(rng, cin, cout, ActKind::kNone));
  std::vector<std::vector<int16_t>> xs;
  for (int s = 0; s < batch; ++s)
    xs.push_back(nn::quantize_vector(nn::random_vector(rng, cin, 1.0f)));

  const auto batched = run_batch(fc, xs, OptLevel::kOutputTiling);
  // Unbatched: max_batch_tile too large to form -> emulate by batch tile 2
  // vs the per-sample fallback path (max_out_tile 4, batch sequential).
  const double lpm_batched = static_cast<double>(batched.loads) / batched.macs;
  // The register file admits (n=4, bt=2): (4+2)/(2*4*2) = 0.375 loads/MAC
  // plus bias/pointer overhead — well under the unbatched 0.5625.
  EXPECT_LT(lpm_batched, 0.45);

  // The unbatched level-c kernel at N=4 costs (1+4)/(2*4) = 0.625 loads/MAC;
  // the batched schedule must be clearly below it in cycles too.
  uint64_t unbatched_cycles = 0;
  {
    iss::Memory mem(8u << 20);
    iss::Core core(&mem);
    kernels::DeviceAllocator alloc(&mem);
    const uint32_t x_addr = alloc.alloc(2 * cin, 4);
    const uint32_t o_addr = alloc.alloc(2 * cout, 4);
    const auto L = kernels::alloc_fc(alloc, fc, x_addr, o_addr);
    assembler::ProgramBuilder b(kernels::kTextBase);
    kernels::FcEmitOptions fo;
    fo.level = OptLevel::kOutputTiling;
    fo.max_tile = 4;
    kernels::emit_fc(b, L, fo);
    b.ebreak();
    const auto prog = b.build();
    core.load_program(prog);
    mem.write_halves(x_addr, xs[0]);
    core.reset(prog.base);
    EXPECT_TRUE(core.run().ok());
    unbatched_cycles = core.stats().total_cycles() * batch;  // 8 sequential runs
  }
  EXPECT_LT(batched.cycles, unbatched_cycles);
}

TEST(FcBatchKernel, RejectsUnsupportedConfigs) {
  kernels::FcBatchLayout L;
  L.fc.cin = 16;
  L.fc.cout = 4;
  L.batch = 1;  // needs >= 2
  kernels::FcBatchEmitOptions opt;
  EXPECT_THROW(kernels::fc_batch_tile(L, opt), std::runtime_error);
  assembler::ProgramBuilder b;
  opt.level = OptLevel::kBaseline;
  EXPECT_THROW(kernels::emit_fc_batch(b, L, opt), std::runtime_error);
}

}  // namespace
}  // namespace rnnasip
