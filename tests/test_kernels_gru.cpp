// GRU kernel tests — bit-exactness at every optimization level, state
// behaviour, stacks, tolerance vs the float reference, and the speedup the
// extensions deliver on a cell the hardware was not specialized for.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernel_test::make_net;
using kernels::OptLevel;
using nn::ActKind;

struct GruCase {
  int input, hidden;
  OptLevel level;
};

class GruKernel : public ::testing::TestWithParam<GruCase> {};

TEST_P(GruKernel, BitExactOverSequence) {
  const auto& p = GetParam();
  Rng rng(0x6A0 + p.input * 3 + p.hidden + static_cast<int>(p.level) * 71);
  const auto gf = nn::random_gru(rng, p.input, p.hidden, 0.3f);
  const auto gq = nn::quantize_gru(gf);

  auto d = make_net(p.level, [&](kernels::NetworkProgramBuilder& b) { b.add_gru(gq); });
  kernels::reset_state(*d.mem, d.net);

  nn::GruStateQ golden{nn::VectorQ(static_cast<size_t>(p.hidden), 0)};
  for (int t = 0; t < 5; ++t) {
    const auto x = nn::quantize_vector(nn::random_vector(rng, p.input, 1.0f));
    const auto got = kernels::run_forward(*d.core, *d.mem, d.net, x);
    const auto want =
        nn::gru_step_fixp(gq, x, golden, d.core->tanh_table(), d.core->sig_table());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "t=" << t << " cell=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GruKernel,
    ::testing::Values(GruCase{6, 10, OptLevel::kBaseline},
                      GruCase{6, 10, OptLevel::kXpulpSimd},
                      GruCase{6, 10, OptLevel::kOutputTiling},
                      GruCase{6, 10, OptLevel::kLoadCompute},
                      GruCase{6, 10, OptLevel::kInputTiling},
                      GruCase{12, 32, OptLevel::kBaseline},
                      GruCase{12, 32, OptLevel::kOutputTiling},
                      GruCase{12, 32, OptLevel::kInputTiling},
                      GruCase{5, 11, OptLevel::kLoadCompute}),  // odd m+n pairs even
    [](const ::testing::TestParamInfo<GruCase>& i) {
      return std::string(1, kernels::opt_level_letter(i.param.level)) + "_" +
             std::to_string(i.param.input) + "x" + std::to_string(i.param.hidden);
    });

TEST(GruKernelLevels, AllLevelsAgreeBitExactly) {
  Rng rng(0x6A1);
  const auto gq = nn::quantize_gru(nn::random_gru(rng, 8, 24, 0.3f));
  std::vector<std::vector<int16_t>> inputs;
  for (int t = 0; t < 4; ++t)
    inputs.push_back(nn::quantize_vector(nn::random_vector(rng, 8, 1.0f)));
  std::vector<int16_t> first;
  for (auto level : kernels::kAllOptLevels) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) { b.add_gru(gq); });
    kernels::reset_state(*d.mem, d.net);
    std::vector<int16_t> out;
    for (const auto& x : inputs) out = kernels::run_forward(*d.core, *d.mem, d.net, x);
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(out, first) << "level " << kernels::opt_level_letter(level);
    }
  }
}

TEST(GruKernel, FixedPointTracksFloatOverSequence) {
  Rng rng(0x6A2);
  const auto gf = nn::random_gru(rng, 8, 12, 0.3f);
  const auto gq = nn::quantize_gru(gf);
  const auto tt = activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  const auto st = activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
  nn::GruStateF sf{nn::VectorF(12, 0.0f)};
  nn::GruStateQ sq{nn::VectorQ(12, 0)};
  for (int t = 0; t < 10; ++t) {
    const auto xf = nn::random_vector(rng, 8, 1.0f);
    nn::gru_step(gf, xf, sf);
    nn::gru_step_fixp(gq, nn::quantize_vector(xf), sq, tt, st);
    for (int i = 0; i < 12; ++i) {
      EXPECT_NEAR(dequantize(sq.h[i]), sf.h[i], 0.05) << "t=" << t << " i=" << i;
    }
  }
}

TEST(GruKernel, GruFcStackBitExact) {
  Rng rng(0x6A3);
  const auto gq = nn::quantize_gru(nn::random_gru(rng, 10, 22, 0.3f));
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 22, 5, ActKind::kNone));
  auto d = make_net(OptLevel::kInputTiling, [&](kernels::NetworkProgramBuilder& b) {
    b.add_gru(gq);
    b.add_fc(fc);
  });
  kernels::reset_state(*d.mem, d.net);
  nn::GruStateQ golden{nn::VectorQ(22, 0)};
  for (int t = 0; t < 3; ++t) {
    const auto x = nn::quantize_vector(nn::random_vector(rng, 10, 1.0f));
    const auto got = kernels::run_forward(*d.core, *d.mem, d.net, x);
    const auto h = nn::gru_step_fixp(gq, x, golden, d.core->tanh_table(),
                                     d.core->sig_table());
    const auto want = nn::fc_forward_fixp(fc, h, d.core->tanh_table(), d.core->sig_table());
    ASSERT_EQ(got, want) << "t=" << t;
  }
}

TEST(GruKernel, ExtensionsSpeedUpGruLikeLstm) {
  // The flexibility claim quantified: a cell outside the benchmark set gets
  // the same order of speedup from the extensions.
  Rng rng(0x6A4);
  const auto gq = nn::quantize_gru(nn::random_gru(rng, 32, 64, 0.3f));
  const auto x = nn::quantize_vector(nn::random_vector(rng, 32, 1.0f));
  uint64_t base = 0, ext = 0;
  for (auto level : {OptLevel::kBaseline, OptLevel::kInputTiling}) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) { b.add_gru(gq); });
    kernels::reset_state(*d.mem, d.net);
    kernels::run_forward(*d.core, *d.mem, d.net, x);
    (level == OptLevel::kBaseline ? base : ext) = d.core->stats().total_cycles();
  }
  const double speedup = static_cast<double>(base) / static_cast<double>(ext);
  EXPECT_GT(speedup, 10.0);
  EXPECT_LT(speedup, 18.0);
}

}  // namespace
}  // namespace rnnasip
