// LSTM kernel tests: bit-exactness vs the golden model at every level,
// state persistence across timesteps, multi-layer stacks, and the tanh/sig
// cycle-share ablation the paper reports in Sec. III-D.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernel_test::make_net;
using kernels::OptLevel;
using nn::ActKind;

struct LstmCase {
  int input, hidden;
  OptLevel level;
};

class LstmKernel : public ::testing::TestWithParam<LstmCase> {};

TEST_P(LstmKernel, BitExactOverSequence) {
  const auto& p = GetParam();
  Rng rng(0x15B1 + p.input * 7 + p.hidden + static_cast<int>(p.level) * 101);
  const auto lf = nn::random_lstm(rng, p.input, p.hidden, 0.3f);
  const auto lq = nn::quantize_lstm(lf);

  auto d = make_net(p.level, [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lq); });
  kernels::reset_state(*d.mem, d.net);

  nn::LstmStateQ golden{nn::VectorQ(static_cast<size_t>(p.hidden), 0),
                        nn::VectorQ(static_cast<size_t>(p.hidden), 0)};
  for (int t = 0; t < 5; ++t) {
    const auto x = nn::quantize_vector(nn::random_vector(rng, p.input, 1.0f));
    const auto got = kernels::run_forward(*d.core, *d.mem, d.net, x);
    const auto want = nn::lstm_step_fixp(lq, x, golden, d.core->tanh_table(),
                                         d.core->sig_table());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "t=" << t << " cell=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LstmKernel,
    ::testing::Values(LstmCase{6, 10, OptLevel::kBaseline},
                      LstmCase{6, 10, OptLevel::kXpulpSimd},
                      LstmCase{6, 10, OptLevel::kOutputTiling},
                      LstmCase{6, 10, OptLevel::kLoadCompute},
                      LstmCase{6, 10, OptLevel::kInputTiling},
                      LstmCase{12, 32, OptLevel::kBaseline},
                      LstmCase{12, 32, OptLevel::kXpulpSimd},
                      LstmCase{12, 32, OptLevel::kOutputTiling},
                      LstmCase{12, 32, OptLevel::kLoadCompute},
                      LstmCase{12, 32, OptLevel::kInputTiling},
                      LstmCase{3, 9, OptLevel::kLoadCompute},   // odd m+n pairs to even
                      LstmCase{3, 9, OptLevel::kInputTiling}),
    [](const ::testing::TestParamInfo<LstmCase>& i) {
      return std::string(1, kernels::opt_level_letter(i.param.level)) + "_" +
             std::to_string(i.param.input) + "x" + std::to_string(i.param.hidden);
    });

TEST(LstmKernelLevels, AllLevelsAgreeBitExactly) {
  Rng rng(0x600D2);
  const auto lq = nn::quantize_lstm(nn::random_lstm(rng, 8, 24, 0.3f));
  std::vector<std::vector<int16_t>> inputs;
  for (int t = 0; t < 4; ++t)
    inputs.push_back(nn::quantize_vector(nn::random_vector(rng, 8, 1.0f)));

  std::vector<int16_t> first;
  for (auto level : kernels::kAllOptLevels) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lq); });
    kernels::reset_state(*d.mem, d.net);
    std::vector<int16_t> out;
    for (const auto& x : inputs) out = kernels::run_forward(*d.core, *d.mem, d.net, x);
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(out, first) << "level " << kernels::opt_level_letter(level);
    }
  }
}

TEST(LstmKernel, ResetStateClearsSequenceMemory) {
  Rng rng(0x5EED);
  const auto lq = nn::quantize_lstm(nn::random_lstm(rng, 6, 10, 0.4f));
  auto d = make_net(OptLevel::kInputTiling,
                    [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lq); });
  const auto x = nn::quantize_vector(nn::random_vector(rng, 6, 1.0f));

  kernels::reset_state(*d.mem, d.net);
  const auto first = kernels::run_forward(*d.core, *d.mem, d.net, x);
  const auto second = kernels::run_forward(*d.core, *d.mem, d.net, x);
  EXPECT_NE(first, second);  // state evolved
  kernels::reset_state(*d.mem, d.net);
  const auto replay = kernels::run_forward(*d.core, *d.mem, d.net, x);
  EXPECT_EQ(first, replay);  // reset reproduces the first step exactly
}

TEST(LstmKernel, StackedLstmPlusFcBitExact) {
  // challita17-style stack: LSTM -> FC -> FC.
  Rng rng(0x57AC);
  const auto lq = nn::quantize_lstm(nn::random_lstm(rng, 8, 16, 0.3f));
  const auto f1 = nn::quantize_fc(nn::random_fc(rng, 16, 12, ActKind::kReLU));
  const auto f2 = nn::quantize_fc(nn::random_fc(rng, 12, 4, ActKind::kNone));

  for (auto level : {OptLevel::kBaseline, OptLevel::kOutputTiling, OptLevel::kInputTiling}) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) {
      b.add_lstm(lq);
      b.add_fc(f1);
      b.add_fc(f2);
    });
    kernels::reset_state(*d.mem, d.net);
    nn::LstmStateQ golden{nn::VectorQ(16, 0), nn::VectorQ(16, 0)};
    for (int t = 0; t < 3; ++t) {
      const auto x = nn::quantize_vector(nn::random_vector(rng, 8, 1.0f));
      const auto got = kernels::run_forward(*d.core, *d.mem, d.net, x);
      const auto h = nn::lstm_step_fixp(lq, x, golden, d.core->tanh_table(),
                                        d.core->sig_table());
      const auto y1 = nn::fc_forward_fixp(f1, h, d.core->tanh_table(), d.core->sig_table());
      const auto want =
          nn::fc_forward_fixp(f2, y1, d.core->tanh_table(), d.core->sig_table());
      ASSERT_EQ(got, want) << "level " << kernels::opt_level_letter(level) << " t=" << t;
    }
  }
}

TEST(LstmKernel, ActivationShareShrinksWithHwInstructions) {
  // Sec. III-D: tanh/sig are a major share of LSTM cycles in SW (10-34%)
  // and nearly free with the pl.tanh/pl.sig extension.
  Rng rng(0xAC7);
  const auto lq = nn::quantize_lstm(nn::random_lstm(rng, 12, 32, 0.3f));
  const auto x = nn::quantize_vector(nn::random_vector(rng, 12, 1.0f));

  auto sw = make_net(OptLevel::kXpulpSimd,
                     [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lq); });
  kernels::reset_state(*sw.mem, sw.net);
  kernels::run_forward(*sw.core, *sw.mem, sw.net, x);
  // SW activation cycles = everything attributable to the routine calls;
  // approximate from the jal count (5 calls per cell: 4 gates + tanh(c')).
  const auto& s = sw.core->stats().by_opcode();
  ASSERT_NE(s.find(isa::Opcode::kJal), s.end());
  EXPECT_GE(s.at(isa::Opcode::kJal).instrs, 5u * 32u);

  auto hw = make_net(OptLevel::kOutputTiling,
                     [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lq); });
  kernels::reset_state(*hw.mem, hw.net);
  kernels::run_forward(*hw.core, *hw.mem, hw.net, x);
  const auto& h = hw.core->stats().by_opcode();
  const uint64_t act_cycles = h.at(isa::Opcode::kPlTanh).cycles + h.at(isa::Opcode::kPlSig).cycles;
  EXPECT_EQ(act_cycles, 5u * 32u);  // single cycle each
  EXPECT_EQ(h.count(isa::Opcode::kJal), 0u);
}

}  // namespace
}  // namespace rnnasip
