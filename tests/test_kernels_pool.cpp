// Max-pooling kernel tests: exactness at every level, golden-model
// agreement, and conv -> pool -> fc chains.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernel_test::make_net;
using kernels::OptLevel;
using nn::ActKind;

struct PoolCase {
  int ch, h, w, k, stride;
  OptLevel level;
};

class PoolKernel : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolKernel, BitExactVsGoldenModel) {
  const auto& p = GetParam();
  Rng rng(0x9001 + p.ch + p.h * 3 + p.k);
  const nn::MaxPoolParams mp{p.k, p.stride};
  auto d = make_net(p.level, [&](kernels::NetworkProgramBuilder& b) {
    b.add_maxpool(mp, p.ch, p.h, p.w);
  });
  const auto in = nn::quantize_tensor(nn::random_tensor(rng, p.ch, p.h, p.w));
  const auto got = kernels::run_forward(*d.core, *d.mem, d.net, in.data);
  const auto want = nn::maxpool_forward_fixp(mp, in);
  ASSERT_EQ(got.size(), want.data.size());
  EXPECT_EQ(got, want.data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoolKernel,
    ::testing::Values(PoolCase{1, 6, 6, 2, 2, OptLevel::kBaseline},
                      PoolCase{1, 6, 6, 2, 2, OptLevel::kInputTiling},
                      PoolCase{3, 8, 8, 2, 2, OptLevel::kBaseline},
                      PoolCase{3, 8, 8, 2, 2, OptLevel::kOutputTiling},
                      PoolCase{2, 9, 9, 3, 3, OptLevel::kXpulpSimd},
                      PoolCase{2, 7, 9, 3, 2, OptLevel::kLoadCompute},  // overlap
                      PoolCase{4, 5, 5, 2, 1, OptLevel::kInputTiling}),
    [](const ::testing::TestParamInfo<PoolCase>& i) {
      return std::string(1, kernels::opt_level_letter(i.param.level)) + "_" +
             std::to_string(i.param.ch) + "x" + std::to_string(i.param.h) + "x" +
             std::to_string(i.param.w) + "k" + std::to_string(i.param.k) + "s" +
             std::to_string(i.param.stride);
    });

struct AvgCase {
  int ch, h, w, k, stride;
  OptLevel level;
};

class AvgPoolKernel : public ::testing::TestWithParam<AvgCase> {};

TEST_P(AvgPoolKernel, BitExactVsGoldenModel) {
  const auto& p = GetParam();
  Rng rng(0x9A01 + p.ch * 5 + p.h + p.k);
  const nn::AvgPoolParams ap{p.k, p.stride};
  auto d = make_net(p.level, [&](kernels::NetworkProgramBuilder& b) {
    b.add_avgpool(ap, p.ch, p.h, p.w);
  });
  const auto in = nn::quantize_tensor(nn::random_tensor(rng, p.ch, p.h, p.w));
  const auto got = kernels::run_forward(*d.core, *d.mem, d.net, in.data);
  const auto want = nn::avgpool_forward_fixp(ap, in);
  EXPECT_EQ(got, want.data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AvgPoolKernel,
    ::testing::Values(AvgCase{1, 6, 6, 2, 2, OptLevel::kBaseline},
                      AvgCase{1, 6, 6, 2, 2, OptLevel::kInputTiling},
                      AvgCase{3, 8, 8, 2, 2, OptLevel::kOutputTiling},
                      AvgCase{2, 9, 9, 4, 4, OptLevel::kXpulpSimd},
                      AvgCase{2, 7, 7, 2, 1, OptLevel::kLoadCompute}),
    [](const ::testing::TestParamInfo<AvgCase>& i) {
      return std::string(1, kernels::opt_level_letter(i.param.level)) + "_" +
             std::to_string(i.param.ch) + "x" + std::to_string(i.param.h) + "k" +
             std::to_string(i.param.k) + "s" + std::to_string(i.param.stride);
    });

TEST(AvgPoolKernel, TracksFloatMeanWithinTruncation) {
  Rng rng(0x9A02);
  const nn::AvgPoolParams ap{2, 2};
  const auto in_f = nn::random_tensor(rng, 2, 6, 6);
  const auto out_f = nn::avgpool_forward(ap, in_f);
  const auto out_q = nn::avgpool_forward_fixp(ap, nn::quantize_tensor(in_f));
  for (size_t i = 0; i < out_f.data.size(); ++i) {
    // Input quantization (0.5 LSB each of 4 terms) + truncating shift (1 LSB).
    EXPECT_NEAR(dequantize(out_q.data[i]), out_f.data[i], 2.0 / 4096.0) << i;
  }
}

TEST(AvgPoolKernel, NonPowerOfTwoWindowRejected) {
  iss::Memory mem(1u << 20);
  EXPECT_THROW(kernels::plan_avgpool({3, 3}, 1, 9, 9, 0x20000, 0x21000),
               std::runtime_error);
}

TEST(PoolKernel, MatchesFloatReferenceExactly) {
  // Max commutes with quantization: pooling the quantized tensor equals
  // quantizing the pooled float tensor.
  Rng rng(0x9002);
  const nn::MaxPoolParams mp{2, 2};
  const auto in_f = nn::random_tensor(rng, 2, 6, 6);
  const auto out_f = nn::maxpool_forward(mp, in_f);
  const auto out_q = nn::maxpool_forward_fixp(mp, nn::quantize_tensor(in_f));
  const auto want = nn::quantize_tensor(out_f);
  EXPECT_EQ(out_q.data, want.data);
}

TEST(PoolKernel, ConvPoolFcChainBitExact) {
  Rng rng(0x9003);
  const auto conv = nn::quantize_conv(nn::random_conv(rng, 1, 4, 3, ActKind::kReLU));
  const nn::MaxPoolParams mp{2, 2};
  // 10x10 -> conv3 -> 8x8 -> pool2 -> 4x4; 4*16 = 64 features.
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 64, 10, ActKind::kNone));
  for (auto level : {OptLevel::kBaseline, OptLevel::kInputTiling}) {
    auto d = make_net(level, [&](kernels::NetworkProgramBuilder& b) {
      b.add_conv(conv, 10, 10);
      b.add_maxpool(mp, 4, 8, 8);
      b.add_fc(fc);
    });
    const auto in = nn::quantize_tensor(nn::random_tensor(rng, 1, 10, 10));
    const auto got = kernels::run_forward(*d.core, *d.mem, d.net, in.data);
    const auto t1 = nn::conv2d_forward_fixp(conv, in);
    const auto t2 = nn::maxpool_forward_fixp(mp, t1);
    const auto want =
        nn::fc_forward_fixp(fc, t2.data, d.core->tanh_table(), d.core->sig_table());
    ASSERT_EQ(got, want) << kernels::opt_level_letter(level);
  }
}

TEST(PoolKernel, PoolingIsCheapRelativeToConv) {
  Rng rng(0x9004);
  const auto conv = nn::quantize_conv(nn::random_conv(rng, 2, 8, 3, ActKind::kNone));
  const nn::MaxPoolParams mp{2, 2};
  auto with_pool = make_net(OptLevel::kInputTiling, [&](kernels::NetworkProgramBuilder& b) {
    b.add_conv(conv, 12, 12);
    b.add_maxpool(mp, 8, 10, 10);
  });
  auto conv_only = make_net(OptLevel::kInputTiling, [&](kernels::NetworkProgramBuilder& b) {
    b.add_conv(conv, 12, 12);
  });
  const auto in = nn::quantize_tensor(nn::random_tensor(rng, 2, 12, 12));
  kernels::run_forward(*with_pool.core, *with_pool.mem, with_pool.net, in.data);
  kernels::run_forward(*conv_only.core, *conv_only.mem, conv_only.net, in.data);
  const double overhead =
      static_cast<double>(with_pool.core->stats().total_cycles()) /
      static_cast<double>(conv_only.core->stats().total_cycles());
  EXPECT_LT(overhead, 1.5);  // pooling adds O(pixels), conv is O(pixels*k^2*ch)
}

}  // namespace
}  // namespace rnnasip
