// Sparse FC kernel tests: bit-exactness vs the dense golden model on the
// pruned matrix (skipping zeros is numerically free), empty-row handling,
// and the cycle crossover vs the dense kernel.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/fc.h"
#include "src/kernels/fc_sparse.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip {
namespace {

using nn::ActKind;

struct SparseRun {
  std::vector<int16_t> out;
  uint64_t cycles = 0;
};

SparseRun run_sparse(const nn::FcParamsQ& fc, const std::vector<int16_t>& x) {
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t xa = alloc.alloc(static_cast<uint32_t>(2 * x.size()), 4);
  const uint32_t oa = alloc.alloc(static_cast<uint32_t>(2 * fc.b.size()), 4);
  const auto L = kernels::alloc_fc_sparse(alloc, fc, xa, oa);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::emit_fc_sparse(b, L);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  mem.write_halves(xa, x);
  core.reset(prog.base);
  const auto res = core.run();
  EXPECT_TRUE(res.ok()) << res.trap_message;
  SparseRun r;
  r.out = mem.read_halves(oa, fc.b.size());
  r.cycles = core.stats().total_cycles();
  return r;
}

nn::FcParamsQ pruned_fc(Rng& rng, int cin, int cout, double density, ActKind act) {
  auto f = nn::random_fc(rng, cin, cout, act, 0.3f);
  nn::prune_matrix(f.w, density);
  return nn::quantize_fc(f);
}

TEST(SparseFc, BitExactVsDenseGoldenAcrossDensities) {
  Rng rng(0x59A);
  const auto tt = activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  const auto st = activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
  for (double density : {1.0, 0.5, 0.2, 0.05}) {
    const auto fc = pruned_fc(rng, 48, 12, density, ActKind::kReLU);
    const auto x = nn::quantize_vector(nn::random_vector(rng, 48, 1.0f));
    const auto got = run_sparse(fc, x);
    const auto want = nn::fc_forward_fixp(fc, x, tt, st);
    EXPECT_EQ(got.out, want) << "density " << density;
  }
}

TEST(SparseFc, FullyPrunedRowsYieldBias) {
  nn::FcParamsQ fc;
  fc.w = nn::MatrixQ(3, 8);  // all zeros
  fc.b = {static_cast<int16_t>(quantize(0.5)), static_cast<int16_t>(quantize(-1.25)), 0};
  fc.act = ActKind::kNone;
  const std::vector<int16_t> x(8, static_cast<int16_t>(quantize(0.7)));
  const auto got = run_sparse(fc, x);
  EXPECT_EQ(got.out[0], quantize(0.5));
  EXPECT_EQ(got.out[1], quantize(-1.25));
  EXPECT_EQ(got.out[2], 0);
}

TEST(SparseFc, PruningHelperKeepsLargestMagnitudes) {
  Rng rng(0x59B);
  auto m = nn::random_matrix(rng, 10, 10, 0.5f);
  nn::prune_matrix(m, 0.3);
  int nnz = 0;
  float min_kept = 1e9f, max_dropped = 0.0f;
  // The threshold keeps the largest 30% — allow boundary ties.
  for (float v : m.data) {
    if (v != 0.0f) {
      ++nnz;
      min_kept = std::min(min_kept, std::abs(v));
    }
  }
  EXPECT_NEAR(nnz, 30, 3);
  EXPECT_GT(min_kept, 0.0f);
  (void)max_dropped;
}

TEST(SparseFc, CrossoverRequiresHighSparsity) {
  // On a single-issue core the gather/index overhead means the compressed
  // kernel beats the dense level-c kernel only at high sparsity — the
  // quantitative form of the paper's Sec. II-A skepticism.
  Rng rng(0x59C);
  const int cin = 256, cout = 32;
  const auto x = nn::quantize_vector(nn::random_vector(rng, cin, 1.0f));

  // Dense reference at level c.
  uint64_t dense_cycles = 0;
  {
    const auto fc = pruned_fc(rng, cin, cout, 1.0, ActKind::kNone);
    iss::Memory mem(8u << 20);
    iss::Core core(&mem);
    kernels::DeviceAllocator alloc(&mem);
    const uint32_t xa = alloc.alloc(2 * cin, 4);
    const uint32_t oa = alloc.alloc(2 * cout, 4);
    const auto L = kernels::alloc_fc(alloc, fc, xa, oa);
    assembler::ProgramBuilder b(kernels::kTextBase);
    kernels::FcEmitOptions fo;
    fo.level = kernels::OptLevel::kOutputTiling;
    kernels::emit_fc(b, L, fo);
    b.ebreak();
    const auto prog = b.build();
    core.load_program(prog);
    mem.write_halves(xa, x);
    core.reset(prog.base);
    ASSERT_TRUE(core.run().ok());
    dense_cycles = core.stats().total_cycles();
  }

  const uint64_t sparse_50 = run_sparse(pruned_fc(rng, cin, cout, 0.5, ActKind::kNone), x).cycles;
  const uint64_t sparse_08 = run_sparse(pruned_fc(rng, cin, cout, 0.08, ActKind::kNone), x).cycles;
  EXPECT_GT(sparse_50, dense_cycles);  // 50% sparsity loses badly
  EXPECT_LT(sparse_08, dense_cycles);  // ~92% sparsity finally wins
}

}  // namespace
}  // namespace rnnasip
