// NN substrate tests: float reference layers, fixed-point golden models
// (tolerance vs float), quantization, and the im2col lowering identity.
#include <gtest/gtest.h>

#include <cmath>

#include "src/activation/pla.h"
#include "src/common/rng.h"
#include "src/nn/init.h"
#include "src/nn/layers.h"
#include "src/nn/quantize.h"

namespace rnnasip::nn {
namespace {

activation::PlaTable tanh_tbl() {
  return activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
}
activation::PlaTable sig_tbl() {
  return activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
}

TEST(Quantize, VectorRoundTrip) {
  Rng rng(7);
  const auto v = random_vector(rng, 100, 2.0f);
  const auto q = quantize_vector(v);
  const auto back = dequantize_vector(q);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(back[i], v[i], 0.5f / 4096.0f);
}

TEST(FcFloat, KnownSmallCase) {
  FcParamsF p;
  p.w = MatrixF(2, 3);
  // W = [[1, 2, 3], [0, -1, 1]], b = [0.5, -0.5], x = [1, 0.5, -1]
  p.w.at(0, 0) = 1;
  p.w.at(0, 1) = 2;
  p.w.at(0, 2) = 3;
  p.w.at(1, 0) = 0;
  p.w.at(1, 1) = -1;
  p.w.at(1, 2) = 1;
  p.b = {0.5f, -0.5f};
  p.act = ActKind::kNone;
  const auto o = fc_forward(p, {1.0f, 0.5f, -1.0f});
  ASSERT_EQ(o.size(), 2u);
  EXPECT_FLOAT_EQ(o[0], 0.5f + 1 + 1 - 3);
  EXPECT_FLOAT_EQ(o[1], -0.5f - 0.5f - 1);
}

TEST(FcFixp, TracksFloat) {
  Rng rng(11);
  const auto tt = tanh_tbl();
  const auto st = sig_tbl();
  for (auto act : {ActKind::kNone, ActKind::kReLU, ActKind::kTanh, ActKind::kSigmoid}) {
    const auto pf = random_fc(rng, 40, 12, act, 0.3f);
    const auto pq = quantize_fc(pf);
    const auto xf = random_vector(rng, 40, 1.0f);
    const auto got = fc_forward_fixp(pq, quantize_vector(xf), tt, st);
    const auto ref = fc_forward(pf, xf);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(dequantize(got[i]), ref[i], 0.02)
          << "act=" << static_cast<int>(act) << " i=" << i;
    }
  }
}

TEST(FcFixp, RequantizeSaturatesLargeAccumulator) {
  // One max-magnitude product stays inside the 32-bit accumulator and must
  // clip to +32767 at the requantize step, not wrap.
  FcParamsQ p;
  p.w = MatrixQ(1, 1);
  p.w.at(0, 0) = 32767;
  p.b = {0};
  p.act = ActKind::kNone;
  const auto o = fc_forward_fixp(p, VectorQ{32767}, tanh_tbl(), sig_tbl());
  EXPECT_EQ(o[0], 32767);
  // And the negative side.
  p.w.at(0, 0) = -32768;
  const auto o2 = fc_forward_fixp(p, VectorQ{32767}, tanh_tbl(), sig_tbl());
  EXPECT_EQ(o2[0], -32768);
}

TEST(LstmFloat, ForgetGateDynamics) {
  // With weights at zero and forget bias huge, the cell state persists; with
  // a large negative forget bias it decays toward zero.
  Rng rng(13);
  LstmParamsF p = random_lstm(rng, 4, 6, 0.0f);  // all-zero weights
  for (auto* bias : {&p.bf}) std::fill(bias->begin(), bias->end(), 10.0f);
  LstmStateF st{VectorF(6, 0.0f), VectorF(6, 0.5f)};
  lstm_step(p, VectorF(4, 0.0f), st);
  for (float c : st.c) EXPECT_NEAR(c, 0.5f, 1e-3);  // i*g = sig(0)*tanh(0) = 0

  std::fill(p.bf.begin(), p.bf.end(), -10.0f);
  LstmStateF st2{VectorF(6, 0.0f), VectorF(6, 0.5f)};
  lstm_step(p, VectorF(4, 0.0f), st2);
  for (float c : st2.c) EXPECT_NEAR(c, 0.0f, 1e-3);
}

TEST(LstmFixp, TracksFloatOverSequence) {
  Rng rng(17);
  const auto pf = random_lstm(rng, 8, 12, 0.3f);
  const auto pq = quantize_lstm(pf);
  const auto tt = tanh_tbl();
  const auto st = sig_tbl();
  LstmStateF sf{VectorF(12, 0.0f), VectorF(12, 0.0f)};
  LstmStateQ sq{VectorQ(12, 0), VectorQ(12, 0)};
  for (int t = 0; t < 10; ++t) {
    const auto xf = random_vector(rng, 8, 1.0f);
    lstm_step(pf, xf, sf);
    lstm_step_fixp(pq, quantize_vector(xf), sq, tt, st);
    for (int i = 0; i < 12; ++i) {
      // Error accumulates over timesteps but stays small for a stable cell.
      EXPECT_NEAR(dequantize(sq.h[i]), sf.h[i], 0.05) << "t=" << t << " i=" << i;
    }
  }
}

TEST(ConvFloat, IdentityKernelPassesThrough) {
  ConvParamsF p;
  p.in_ch = 1;
  p.out_ch = 1;
  p.kh = p.kw = 1;
  p.w = {1.0f};
  p.b = {0.0f};
  Tensor3F in(1, 4, 4);
  for (size_t i = 0; i < in.data.size(); ++i) in.data[i] = static_cast<float>(i) * 0.1f;
  const auto out = conv2d_forward(p, in);
  EXPECT_EQ(out.data.size(), in.data.size());
  for (size_t i = 0; i < in.data.size(); ++i) EXPECT_FLOAT_EQ(out.data[i], in.data[i]);
}

TEST(ConvFloat, OutputDims) {
  EXPECT_EQ(conv_out_dim(10, 3, 1, 0), 8);
  EXPECT_EQ(conv_out_dim(10, 3, 1, 1), 10);
  EXPECT_EQ(conv_out_dim(10, 3, 2, 0), 4);
}

TEST(ConvFixp, TracksFloat) {
  Rng rng(19);
  const auto pf = random_conv(rng, 3, 4, 3, ActKind::kReLU, 1, 0, 0.2f);
  const auto pq = quantize_conv(pf);
  const auto inf = random_tensor(rng, 3, 8, 8);
  const auto got = conv2d_forward_fixp(pq, quantize_tensor(inf));
  const auto ref = conv2d_forward(pf, inf);
  ASSERT_EQ(got.data.size(), ref.data.size());
  for (size_t i = 0; i < ref.data.size(); ++i) {
    EXPECT_NEAR(dequantize(got.data[i]), ref.data[i], 0.03) << i;
  }
}

TEST(Im2col, LoweringMatchesDirectConv) {
  // Conv via im2col + row dot products must equal the direct fixed-point
  // conv result exactly (no padding case).
  Rng rng(23);
  const auto pq = quantize_conv(random_conv(rng, 2, 3, 3, ActKind::kNone, 1, 0, 0.3f));
  const auto in = quantize_tensor(random_tensor(rng, 2, 6, 6));
  const auto direct = conv2d_forward_fixp(pq, in);
  const auto col = im2col(pq, in);

  const int oh = conv_out_dim(6, 3, 1, 0);
  const int ow = conv_out_dim(6, 3, 1, 0);
  ASSERT_EQ(col.rows, 2 * 3 * 3);
  ASSERT_EQ(col.cols, oh * ow);
  const auto tt = tanh_tbl();
  const auto st = sig_tbl();
  for (int p = 0; p < col.cols; ++p) {
    FcParamsQ fc;
    fc.w = MatrixQ(pq.out_ch, col.rows);
    for (int oc = 0; oc < pq.out_ch; ++oc)
      for (int k = 0; k < col.rows; ++k)
        fc.w.at(oc, k) = pq.w[static_cast<size_t>(oc) * col.rows + k];
    fc.b = pq.b;
    fc.act = ActKind::kNone;
    VectorQ x(static_cast<size_t>(col.rows));
    for (int k = 0; k < col.rows; ++k) x[static_cast<size_t>(k)] = col.at(k, p);
    const auto o = fc_forward_fixp(fc, x, tt, st);
    for (int oc = 0; oc < pq.out_ch; ++oc) {
      EXPECT_EQ(o[static_cast<size_t>(oc)], direct.data[static_cast<size_t>(oc) * oh * ow + p])
          << "oc=" << oc << " p=" << p;
    }
  }
}

TEST(Tensor, BoundsChecking) {
  MatrixF m(2, 3);
  EXPECT_THROW(m.at(2, 0), std::runtime_error);
  EXPECT_THROW(m.at(0, 3), std::runtime_error);
  Tensor3F t(1, 2, 2);
  EXPECT_THROW(t.at(1, 0, 0), std::runtime_error);
}

}  // namespace
}  // namespace rnnasip::nn
