// Tests for the observability subsystem (src/obs): deterministic JSON,
// region recording/lookup, region-scoped cycle attribution and its
// accounting identity at every optimization level, timeline nesting, the
// Perfetto trace_event export, and the bench --json harness.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bench/bench_io.h"
#include "src/asm/parser.h"
#include "src/iss/core.h"
#include "src/obs/json.h"
#include "src/obs/profile.h"
#include "src/obs/region.h"
#include "src/obs/report.h"
#include "src/obs/trace_export.h"
#include "src/rrm/engine.h"

namespace rnnasip::obs {
namespace {

// ---------------------------------------------------------------- Json ----

TEST(Json, ScalarsAndEscapes) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(uint64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(Json("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
}

TEST(Json, DoublesAreStableAndAlwaysFloatShaped) {
  // Integral doubles keep a ".0" so the type never flips between runs.
  EXPECT_EQ(Json(15.0).dump(), "15.0");
  EXPECT_EQ(Json(9.09375).dump(), "9.09375");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  // Non-finite values have no JSON spelling; they degrade to null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwriteInPlace) {
  Json o = Json::object();
  o.set("z", 1);
  o.set("a", 2);
  o.set("z", 3);  // overwrite must keep z first
  EXPECT_EQ(o.dump(), "{\"z\":3,\"a\":2}");
  Json arr = Json::array();
  arr.push(1);
  arr.push("x");
  EXPECT_EQ(arr.dump(), "[1,\"x\"]");
  EXPECT_EQ(arr.size(), 2u);
}

TEST(Json, PrettyDumpIsDeterministic) {
  Json o = Json::object();
  o.set("k", Json::array().push(1).push(2));
  const std::string a = o.dump_pretty();
  const std::string b = o.dump_pretty();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\n"), std::string::npos);
  EXPECT_EQ(a.back(), '\n');
}

// ------------------------------------------------------------- regions ----

TEST(RegionMap, RecorderBuildsNestedInnermostLookup) {
  RegionRecorder rec;
  const int root = rec.open("network", RegionKind::kNetwork, 0);
  const int layer = rec.open("fc0", RegionKind::kLayer, 2);
  const int kern = rec.open("matvec", RegionKind::kKernel, 3);
  rec.close(kern, 6);
  rec.close(layer, 8);
  rec.close(root, 10);
  const RegionMap map = rec.finish(12);

  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.defs()[root].parent, -1);
  EXPECT_EQ(map.defs()[layer].parent, root);
  EXPECT_EQ(map.defs()[kern].parent, layer);
  EXPECT_EQ(map.defs()[kern].depth, 2);

  EXPECT_EQ(map.innermost_at(0), root);
  EXPECT_EQ(map.innermost_at(2), layer);
  EXPECT_EQ(map.innermost_at(4), kern);
  EXPECT_EQ(map.innermost_at(7), layer);
  EXPECT_EQ(map.innermost_at(9), root);
  EXPECT_EQ(map.innermost_at(11), -1);  // past the root's close
  EXPECT_EQ(map.innermost_at(99), -1);

  // PC form: 4 bytes per generated instruction.
  EXPECT_EQ(map.innermost_at_pc(0x1000 + 4 * 4, 0x1000), kern);
  EXPECT_EQ(map.innermost_at_pc(0x0FF0, 0x1000), -1);
}

TEST(RegionKindNames, AreStable) {
  EXPECT_STREQ(region_kind_name(RegionKind::kNetwork), "network");
  EXPECT_STREQ(region_kind_name(RegionKind::kGate), "gate");
  EXPECT_STREQ(region_kind_name(RegionKind::kKernel), "kernel");
}

// ------------------------------------------------------------ profiler ----

TEST(RegionProfiler, AttributesCyclesAndPostHocStallsByRegion) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = assembler::assemble(R"(
      li a0, 64
      sw a0, 0(a0)
      lw a1, 0(a0)
      addi a1, a1, 1   # load-use stall lands inside the region of this pc
      ebreak
  )");
  core.load_program(p);
  core.reset(p.base);

  RegionRecorder rec;
  const int root = rec.open("prog", RegionKind::kNetwork, 0);
  const int body = rec.open("body", RegionKind::kKernel, 2);  // lw + addi
  rec.close(body, 4);
  rec.close(root, 5);
  const RegionMap map = rec.finish(5);

  RegionProfiler prof(&map, p.base);
  prof.attach(core);
  const auto res = core.run();
  ASSERT_EQ(res.exit, iss::RunResult::Exit::kEbreak);

  // The identity: region self counters + unattributed == core totals.
  const RegionCounters tot = prof.totals();
  EXPECT_EQ(tot.cycles, core.stats().total_cycles());
  EXPECT_EQ(tot.instrs, core.stats().total_instrs());
  EXPECT_TRUE(core.stats().identity_holds());

  // The load-use stall was charged to "body", nothing to the root.
  const auto lu = static_cast<size_t>(iss::StallCause::kLoadUse);
  EXPECT_GT(core.stats().stall_cycles(iss::StallCause::kLoadUse), 0u);
  EXPECT_EQ(prof.counters()[body].stalls[lu],
            core.stats().stall_cycles(iss::StallCause::kLoadUse));
  EXPECT_EQ(prof.counters()[root].stalls[lu], 0u);
  EXPECT_EQ(prof.unattributed().cycles, 0u);
}

TEST(NetObservation, InclusiveSumsDescendantsIntoAncestors) {
  RegionRecorder rec;
  const int root = rec.open("network", RegionKind::kNetwork, 0);
  const int a = rec.open("fc0", RegionKind::kLayer, 1);
  rec.close(a, 4);
  const int b = rec.open("fc1", RegionKind::kLayer, 4);
  rec.close(b, 8);
  rec.close(root, 8);

  NetObservation ob;
  ob.map = rec.finish(8);
  ob.counters.resize(3);
  ob.counters[root].cycles = 5;
  ob.counters[a].cycles = 10;
  ob.counters[b].cycles = 20;
  const auto inc = ob.inclusive();
  EXPECT_EQ(inc[a].cycles, 10u);
  EXPECT_EQ(inc[b].cycles, 20u);
  EXPECT_EQ(inc[root].cycles, 35u);
}

// -------------------------------------------- suite observe + identity ----

// The acceptance bar: the cycle-accounting identity holds, and is *checked*,
// at every optimization level — the engine itself asserts
// sum(region cycles) == ExecStats totals when observe is on, and we
// re-verify from the returned observation here.
TEST(SuiteObserve, IdentityHoldsAtEveryOptLevel) {
  rrm::Engine eng;
  for (const char* name : {"ahmed19", "challita17"}) {
    for (auto level : kernels::kAllOptLevels) {
      rrm::Request req;
      req.network = name;
      req.level = level;
      req.observe = true;
      const auto r = eng.run(req).result;
      ASSERT_TRUE(r.completed) << name;
      ASSERT_TRUE(r.obs) << name;
      EXPECT_TRUE(r.stats.identity_holds()) << name;

      RegionCounters sum = r.obs->unattributed;
      for (const auto& c : r.obs->counters) sum.merge(c);
      EXPECT_EQ(sum.cycles, r.cycles)
          << name << " level " << kernels::opt_level_letter(level);
      EXPECT_EQ(sum.instrs, r.instrs)
          << name << " level " << kernels::opt_level_letter(level);
      EXPECT_EQ(sum.macs, r.stats.total_macs()) << name;

      // Inclusive root == whole network.
      const auto inc = r.obs->inclusive();
      ASSERT_FALSE(inc.empty());
      EXPECT_EQ(inc[0].cycles + r.obs->unattributed.cycles, r.cycles) << name;
    }
  }
}

TEST(SuiteObserve, LstmGateRegionsArePresentAndNested) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "challita17";
  req.level = kernels::OptLevel::kInputTiling;
  req.observe = true;
  const auto r = eng.run(req).result;
  ASSERT_TRUE(r.obs);
  int gates = 0;
  for (const auto& d : r.obs->map.defs()) {
    if (d.kind == RegionKind::kGate) {
      ++gates;
      ASSERT_GE(d.parent, 0);
      // A gate nests under a layer, and spans stay inside the parent.
      EXPECT_EQ(r.obs->map.defs()[d.parent].kind, RegionKind::kLayer);
      EXPECT_GE(d.begin, r.obs->map.defs()[d.parent].begin);
      EXPECT_LE(d.end, r.obs->map.defs()[d.parent].end);
    }
  }
  EXPECT_EQ(gates, 4);  // one LSTM layer: gate_i, gate_f, gate_o, gate_g
}

// ------------------------------------------------------------ timeline ----

TEST(SuiteObserve, TimelineSpansNestProperly) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "ahmed19";
  req.level = kernels::OptLevel::kInputTiling;
  req.observe = true;
  req.timeline = true;
  const auto r = eng.run(req).result;
  ASSERT_TRUE(r.obs);
  ASSERT_FALSE(r.obs->timeline.empty());
  EXPECT_FALSE(r.obs->timeline_truncated);
  uint64_t covered = 0;
  for (const auto& ev : r.obs->timeline) {
    ASSERT_GE(ev.region, 0);
    ASSERT_LT(static_cast<size_t>(ev.region), r.obs->map.size());
    EXPECT_LE(ev.begin, ev.end);
    EXPECT_LE(ev.end, r.cycles);
    if (r.obs->map.defs()[static_cast<size_t>(ev.region)].depth == 0)
      covered += ev.end - ev.begin;
  }
  // Root-depth spans cover the whole run (the root region wraps the
  // program, so attributed time at depth 0 is the full clock).
  EXPECT_EQ(covered, r.cycles);
}

// ------------------------------------------------------------ exports ----

// Minimal structural JSON validator: balanced braces/brackets outside
// strings, string escapes legal. Enough to catch malformed emission without
// a parser dependency.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) esc = false;
      else if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_str && stack.empty();
}

TEST(PerfettoExport, EmitsWellFormedTraceEventJson) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "ahmed19";
  req.level = kernels::OptLevel::kXpulpSimd;
  req.observe = true;
  req.timeline = true;
  const auto r = eng.run(req).result;
  ASSERT_TRUE(r.obs);
  const std::string json = to_perfetto_json(*r.obs);

  EXPECT_TRUE(json_well_formed(json));
  // Schema fields of the trace_event format.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process_name
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration spans
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // stall counters
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  EXPECT_NE(json.find("ahmed19"), std::string::npos);
}

TEST(PerfettoExport, DeterministicAcrossSameSeedRuns) {
  auto once = [] {
    rrm::Engine eng;
    rrm::Request req;
    req.network = "eisen19";
    req.level = kernels::OptLevel::kLoadCompute;
    req.observe = true;
    req.timeline = true;
    return to_perfetto_json(*eng.run(req).result.obs);
  };
  EXPECT_EQ(once(), once());
}

TEST(Reports, RegionTableAndMarkdownRollups) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "ahmed19";
  req.level = kernels::OptLevel::kInputTiling;
  req.observe = true;
  const auto r = eng.run(req).result;
  ASSERT_TRUE(r.obs);

  const Table rt = region_table(*r.obs);
  const std::string txt = rt.to_string();
  EXPECT_NE(txt.find("network"), std::string::npos);
  EXPECT_NE(txt.find("matvec"), std::string::npos);
  EXPECT_NE(txt.find("load_use"), std::string::npos);

  const std::string md = report_markdown(*r.obs);
  EXPECT_NE(md.find("| region"), std::string::npos);
  EXPECT_NE(md.find(":---"), std::string::npos);

  const Table st = stall_table(r.stats);
  const std::string stxt = st.to_string();
  EXPECT_NE(stxt.find("issue"), std::string::npos);
  EXPECT_NE(stxt.find("total"), std::string::npos);
}

// ------------------------------------------------------------ bench IO ----

TEST(BenchIo, ParseStripsHarnessFlagsLeavesOthers) {
  char a0[] = "bench", a1[] = "--json", a2[] = "/tmp/out.json";
  char a3[] = "--per-net", a4[] = "--wall-time";
  char* argv[] = {a0, a1, a2, a3, a4, nullptr};
  int argc = 5;
  const auto io = bench::BenchIo::parse(argc, argv);
  EXPECT_TRUE(io.json_enabled());
  EXPECT_EQ(io.path(), "/tmp/out.json");
  EXPECT_TRUE(io.wall_time());
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--per-net");
}

TEST(BenchIo, NoFlagsMeansDisabled) {
  char a0[] = "bench";
  char* argv[] = {a0, nullptr};
  int argc = 1;
  const auto io = bench::BenchIo::parse(argc, argv);
  EXPECT_FALSE(io.json_enabled());
  EXPECT_FALSE(io.wall_time());
  EXPECT_FALSE(io.observe());
  EXPECT_FALSE(io.trace_enabled());
  EXPECT_FALSE(io.has_seed());
  EXPECT_EQ(io.seed(0x52414D), 0x52414Du);
}

TEST(BenchIo, ParsesObserveTraceAndSeed) {
  char a0[] = "bench", a1[] = "--observe", a2[] = "--trace", a3[] = "/tmp/t.json";
  char a4[] = "--seed", a5[] = "0x5EED", a6[] = "--own-flag";
  char* argv[] = {a0, a1, a2, a3, a4, a5, a6, nullptr};
  int argc = 7;
  const auto io = bench::BenchIo::parse(argc, argv);
  EXPECT_TRUE(io.observe());
  EXPECT_TRUE(io.trace_enabled());
  EXPECT_EQ(io.trace_path(), "/tmp/t.json");
  EXPECT_TRUE(io.has_seed());
  EXPECT_EQ(io.seed(0), 0x5EEDu);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--own-flag");
}

TEST(BenchIo, StatsJsonIsDeterministicAndCarriesTaxonomy) {
  auto run = [] {
    rrm::Engine eng;
    rrm::Request req;
    req.network = "eisen19";
    req.level = kernels::OptLevel::kBaseline;
    return eng.run(req).result;
  };
  const auto r1 = run();
  const auto r2 = run();
  const std::string j1 = bench::stats_to_json(r1.stats).dump_pretty();
  const std::string j2 = bench::stats_to_json(r2.stats).dump_pretty();
  EXPECT_EQ(j1, j2);
  EXPECT_TRUE(json_well_formed(j1));
  EXPECT_NE(j1.find("\"stall_cycles\""), std::string::npos);
  EXPECT_NE(j1.find("\"load_use\""), std::string::npos);
  EXPECT_NE(j1.find("\"identity_holds\": true"), std::string::npos);
}

}  // namespace
}  // namespace rnnasip::obs
