// Textual assembler tests: directed syntax cases, error reporting, pseudo
// instructions, label arithmetic, execution of assembled programs, and the
// disassemble -> assemble round-trip property over generated kernels.
#include <gtest/gtest.h>

#include "src/asm/builder.h"
#include "src/asm/disasm.h"
#include "src/asm/parser.h"
#include "src/common/rng.h"
#include "src/isa/encode.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip::assembler {
namespace {

using namespace isa;

TEST(Parser, BasicInstructions) {
  const auto p = assemble(R"(
    addi a0, zero, 42
    add  a1, a0, a0
    lw   a2, 8(sp)
    sw   a2, -4(s0)
    ebreak
  )");
  ASSERT_EQ(p.instrs.size(), 5u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kAddi);
  EXPECT_EQ(p.instrs[0].imm, 42);
  EXPECT_EQ(p.instrs[2].op, Opcode::kLw);
  EXPECT_EQ(p.instrs[2].imm, 8);
  EXPECT_EQ(p.instrs[3].imm, -4);
  EXPECT_EQ(p.instrs[4].op, Opcode::kEbreak);
}

TEST(Parser, XpulpForms) {
  const auto p = assemble(R"(
    p.lw a1, 4(a0!)
    p.sh a2, 2(a3!)
    p.lw.rr a4, a5(a6!)
    pv.sdotsp.h a2, a1, a1
    pl.sdotsp.h.0 a2, a0, a1
    pl.tanh a3, a2
    p.clip a3, a3, 16
  )");
  ASSERT_EQ(p.instrs.size(), 7u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kPLw);
  EXPECT_EQ(p.instrs[0].imm, 4);
  EXPECT_EQ(p.instrs[2].op, Opcode::kPLwRr);
  EXPECT_EQ(p.instrs[2].rs1, kA6);
  EXPECT_EQ(p.instrs[2].rs2, kA5);
  EXPECT_EQ(p.instrs[4].op, Opcode::kPlSdotspH0);
  EXPECT_EQ(p.instrs[6].op, Opcode::kPClip);
  EXPECT_EQ(p.instrs[6].imm, 16);
}

TEST(Parser, LabelsForwardAndBackward) {
  const auto p = assemble(R"(
    top:
      addi a0, a0, 1
      beq a0, a1, done
      j top
    done:
      ebreak
  )");
  ASSERT_EQ(p.instrs.size(), 4u);
  EXPECT_EQ(p.instrs[1].imm, 8);   // beq -> done (2 instrs ahead)
  EXPECT_EQ(p.instrs[2].imm, -8);  // j -> top
}

TEST(Parser, HardwareLoopSyntax) {
  const auto p = assemble(R"(
      li t0, 100
      lp.setup 0, t0, end
      addi a0, a0, 1
    end:
      lp.setupi 1, 32, end2
      addi a1, a1, 1
    end2:
      ebreak
  )");
  EXPECT_EQ(p.instrs[1].op, Opcode::kLpSetup);
  EXPECT_EQ(p.instrs[1].imm, 8);  // end is 2 instructions after the setup
  EXPECT_EQ(p.instrs[3].op, Opcode::kLpSetupi);
  EXPECT_EQ(p.instrs[3].imm, 32);
  EXPECT_EQ(p.instrs[3].imm2, 8);
}

TEST(Parser, PseudoInstructions) {
  const auto p = assemble(R"(
    nop
    mv a0, a1
    li t0, 5
    li t1, 0x12345678
    li t2, 0x12345000
    ret
  )");
  // nop + mv + li(1) + li(2) + li(1, lui only) + ret = 7 instructions.
  ASSERT_EQ(p.instrs.size(), 7u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kAddi);
  EXPECT_EQ(p.instrs[3].op, Opcode::kLui);
  EXPECT_EQ(p.instrs[4].op, Opcode::kAddi);
  EXPECT_EQ(p.instrs[5].op, Opcode::kLui);
  EXPECT_EQ(p.instrs[6].op, Opcode::kJalr);
}

TEST(Parser, LiExpansionKeepsLabelOffsetsRight) {
  const auto p = assemble(R"(
      j over
      li t0, 0x12345678
    over:
      ebreak
  )");
  // j skips 2 instructions (the expanded li) -> offset 12.
  EXPECT_EQ(p.instrs[0].imm, 12);
}

TEST(Parser, CommentsAndBlankLines) {
  const auto p = assemble(R"(
    # full-line comment
    addi a0, a0, 1   # trailing comment
    // C++-style
    addi a0, a0, 2   ; asm-style

  )");
  EXPECT_EQ(p.instrs.size(), 2u);
}

TEST(Parser, NumericRegisterNames) {
  const auto p = assemble("add x10, x11, x31\n");
  EXPECT_EQ(p.instrs[0].rd, 10);
  EXPECT_EQ(p.instrs[0].rs1, 11);
  EXPECT_EQ(p.instrs[0].rs2, 31);
}

TEST(Parser, CsrFormsAndPseudos) {
  const auto p = assemble(R"(
    csrrw a0, 0x340, a1
    csrrs a2, 0xc00, zero
    csrrc a3, 0x340, a4
    rdcycle t0
    rdinstret t1
  )");
  ASSERT_EQ(p.instrs.size(), 5u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kCsrrw);
  EXPECT_EQ(p.instrs[0].imm, 0x340);
  EXPECT_EQ(p.instrs[1].op, Opcode::kCsrrs);
  EXPECT_EQ(p.instrs[1].imm, 0xC00);
  EXPECT_EQ(p.instrs[1].rs1, kZero);
  EXPECT_EQ(p.instrs[3].op, Opcode::kCsrrs);
  EXPECT_EQ(p.instrs[3].rd, kT0);
  EXPECT_EQ(p.instrs[4].imm, 0xC02);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    assemble("addi a0, a0, 1\nbogus a0, a1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
  EXPECT_THROW(assemble("addi a0, a0, 99999\n"), std::runtime_error);   // imm range
  EXPECT_THROW(assemble("beq a0, a1, nowhere\n"), std::runtime_error);  // bad label
  EXPECT_THROW(assemble("lp.setup 0, t0\n"), std::runtime_error);       // missing target
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), std::runtime_error);       // dup label
}

TEST(Parser, AssembledProgramExecutes) {
  // Sum 1..10 with a hardware loop, assembled from text.
  const auto p = assemble(R"(
      li a0, 0
      li a1, 0
      lp.setupi 0, 10, end
      addi a1, a1, 1
      add a0, a0, a1
    end:
      ebreak
  )");
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.load_program(p);
  core.reset(p.base);
  const auto res = core.run();
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kEbreak);
  EXPECT_EQ(core.reg(isa::kA0), 55u);
}

TEST(Parser, DisassembleAssembleRoundTripOnKernels) {
  // Property: assembling the disassembly of a generated network program
  // reproduces the exact instruction encodings. (The disassembler prints
  // absolute targets, which the parser accepts.)
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  Rng rng(99);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 24, 10, nn::ActKind::kTanh));
  for (auto level : kernels::kAllOptLevels) {
    kernels::NetworkProgramBuilder nb(&mem, level, core.tanh_table(), core.sig_table());
    nb.add_fc(fc);
    const auto net = nb.finalize();
    // Strip the "address:" prefixes the listing adds.
    std::string text;
    for (size_t i = 0; i < net.program.instrs.size(); ++i) {
      text += disassemble(net.program.instrs[i], net.program.address_of(i));
      text += '\n';
    }
    const auto re = assemble(text, net.program.base);
    ASSERT_EQ(re.instrs.size(), net.program.instrs.size())
        << "level " << kernels::opt_level_letter(level);
    const auto w1 = net.program.encode_words();
    const auto w2 = re.encode_words();
    EXPECT_EQ(w1, w2) << "level " << kernels::opt_level_letter(level);
  }
}

}  // namespace
}  // namespace rnnasip::assembler
