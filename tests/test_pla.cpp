// Tests for the piecewise-linear activation approximation (the design
// behind pl.tanh / pl.sig): hardware-semantics invariants, symmetry,
// monotonicity, convergence, and the paper's chosen design point accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "src/activation/pla.h"

namespace rnnasip::activation {
namespace {

PlaTable paper_tanh() { return PlaTable::build({ActFunc::kTanh, 9, 32}); }
// Sigmoid converges more slowly than tanh; the shipped configuration spans
// ±8 with the same 32-entry LUT (see Core::Config).
PlaTable paper_sig() { return PlaTable::build({ActFunc::kSigmoid, 10, 32}); }

TEST(PlaSpec, PaperDesignPointRange) {
  // 32 intervals of 2^9 Q3.12 LSBs = 32 * 0.125 = interpolation range 4.0.
  const PlaSpec s{ActFunc::kTanh, 9, 32};
  EXPECT_DOUBLE_EQ(s.range(), 4.0);
}

TEST(PlaSpec, ForRangeRecoversPaperPoint) {
  const auto s = PlaSpec::for_range(ActFunc::kTanh, 4.0, 32);
  EXPECT_EQ(s.log2_interval, 9);
  EXPECT_EQ(s.num_intervals, 32);
  EXPECT_DOUBLE_EQ(s.range(), 4.0);
}

TEST(PlaTable, TanhFixedPoints) {
  const auto t = paper_tanh();
  EXPECT_EQ(t.eval_raw(0), 0);  // tanh(0) = 0 exactly
  // Convergence region: tanh(big) = 1.0 = 4096 raw.
  EXPECT_EQ(t.eval_raw(quantize(7.9)), 4096);
  EXPECT_EQ(t.eval_raw(quantize(-7.9)), -4096);
}

TEST(PlaTable, SigmoidFixedPoints) {
  const auto t = paper_sig();
  EXPECT_EQ(t.eval_raw(0), quantize(0.5));  // sig(0) = 0.5
  // The ±8 interpolation range covers the whole Q3.12 domain, so the edges
  // evaluate the last chord: within 2 LSBs of full saturation.
  EXPECT_NEAR(t.eval_raw(quantize(7.9)), 4096, 2);
  EXPECT_NEAR(t.eval_raw(quantize(-7.9)), 0, 2);
}

TEST(PlaTable, TanhIsOddSymmetric) {
  const auto t = paper_tanh();
  for (int32_t x = 0; x <= 32767; x += 7) {
    EXPECT_EQ(t.eval_raw(-x), -t.eval_raw(x)) << "x=" << x;
  }
}

TEST(PlaTable, SigmoidSymmetry) {
  const auto t = paper_sig();
  const int32_t one = quantize(1.0);
  for (int32_t x = 0; x <= 32767; x += 7) {
    EXPECT_EQ(t.eval_raw(-x), one - t.eval_raw(x)) << "x=" << x;
  }
}

TEST(PlaTable, MonotoneWithinLutQuantization) {
  // Chord interpolation of a monotone function is monotone; quantizing the
  // LUT entries to 16 bits can introduce at most a 1-LSB wiggle at interval
  // boundaries.
  const auto t = paper_tanh();
  const auto s = paper_sig();
  int32_t prev_t = t.eval_raw(-32768);
  int32_t prev_s = s.eval_raw(-32768);
  for (int32_t x = -32767; x <= 32767; ++x) {
    const int32_t yt = t.eval_raw(x);
    const int32_t ys = s.eval_raw(x);
    EXPECT_GE(yt, prev_t - 1) << "tanh not monotone at x=" << x;
    EXPECT_GE(ys, prev_s - 1) << "sig not monotone at x=" << x;
    prev_t = yt;
    prev_s = ys;
  }
}

TEST(PlaTable, OutputRangeBounded) {
  const auto t = paper_tanh();
  const auto s = paper_sig();
  for (int32_t x = -32768; x <= 32767; x += 3) {
    EXPECT_LE(std::abs(t.eval_raw(x)), 4096);
    EXPECT_GE(s.eval_raw(x), 0);
    EXPECT_LE(s.eval_raw(x), 4096);
  }
}

TEST(PlaAccuracy, PaperDesignPointTanh) {
  // Paper (Sec. III-D): range ±4, 32 intervals -> MSE 9.81e-7, max |e|
  // 3.8e-4 vs full-precision tanh. Our chord fit with 16-bit LUT entries
  // lands in the same band (chord bound: h^2/8 * max f'' = 1.5e-3).
  const auto stats = measure_error(paper_tanh());
  EXPECT_LT(stats.mse(), 5e-6);
  EXPECT_LT(stats.max_abs_error(), 2e-3);
}

TEST(PlaAccuracy, PaperDesignPointSigmoid) {
  const auto stats = measure_error(paper_sig());
  EXPECT_LT(stats.mse(), 5e-6);
  EXPECT_LT(stats.max_abs_error(), 1.5e-3);
}

TEST(PlaAccuracy, MoreIntervalsMonotonicallyBetter) {
  double prev_mse = 1e9;
  for (int m : {4, 8, 16, 32, 64}) {
    const auto t = PlaTable::build(PlaSpec::for_range(ActFunc::kTanh, 4.0, m));
    const double mse = measure_error(t).mse();
    EXPECT_LT(mse, prev_mse) << "intervals=" << m;
    prev_mse = mse;
  }
}

TEST(PlaAccuracy, TooSmallRangeHurts) {
  // Range 1 truncates tanh hard at tanh(1)=0.76 -> large max error.
  const auto narrow = PlaTable::build(PlaSpec::for_range(ActFunc::kTanh, 1.0, 32));
  const auto wide = PlaTable::build(PlaSpec::for_range(ActFunc::kTanh, 4.0, 32));
  EXPECT_GT(measure_error(narrow).max_abs_error(),
            10 * measure_error(wide).max_abs_error());
}

TEST(PlaAccuracy, LeastSquaresBeatsChordOnMse) {
  const auto ls = PlaTable::build({ActFunc::kTanh, 9, 32, q3_12, FitMethod::kLeastSquares});
  const auto ch = PlaTable::build({ActFunc::kTanh, 9, 32, q3_12, FitMethod::kChord});
  EXPECT_LE(measure_error(ls).mse(), measure_error(ch).mse() * 1.01);
}

TEST(PlaTable, LutCost) {
  // 32 intervals x (16-bit slope + 16-bit offset) = 1024 bits per function.
  EXPECT_EQ(paper_tanh().lut_bits(), 1024);
}

class PlaSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlaSweep, ErrorBoundedEverywhere) {
  const auto [log2_iv, m] = GetParam();
  for (ActFunc f : {ActFunc::kTanh, ActFunc::kSigmoid}) {
    const auto t = PlaTable::build({f, log2_iv, m});
    const auto stats = measure_error(t);
    // Even configurations with a tiny interpolation range (where everything
    // beyond the range snaps to the convergence value) stay bounded by the
    // function's own output range, and statistics stay sane.
    EXPECT_GT(stats.count(), 0u);
    EXPECT_LT(stats.max_abs_error(), 1.0);
    EXPECT_GE(stats.mse(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ConfigGrid, PlaSweep,
                         ::testing::Combine(::testing::Values(7, 8, 9, 10, 11),
                                            ::testing::Values(4, 8, 16, 32, 64)));

}  // namespace
}  // namespace rnnasip::activation
