// Error-injection and misuse tests: the library must fail loudly and
// precisely on caller errors, never emit corrupt programs or silently
// truncate.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "tests/kernel_testutil.h"

namespace rnnasip {
namespace {

using kernels::OptLevel;
using nn::ActKind;

TEST(Robustness, LayerSizeMismatchThrows) {
  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  Rng rng(1);
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kInputTiling, core.tanh_table(),
                                   core.sig_table());
  b.add_fc(nn::quantize_fc(nn::random_fc(rng, 16, 8, ActKind::kNone)));
  EXPECT_THROW(b.add_fc(nn::quantize_fc(nn::random_fc(rng, 10, 4, ActKind::kNone))),
               std::runtime_error);
}

TEST(Robustness, EmptyNetworkThrows) {
  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kBaseline, core.tanh_table(),
                                   core.sig_table());
  EXPECT_THROW(b.finalize(), std::runtime_error);
}

TEST(Robustness, DoubleFinalizeThrows) {
  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  Rng rng(2);
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kBaseline, core.tanh_table(),
                                   core.sig_table());
  b.add_fc(nn::quantize_fc(nn::random_fc(rng, 4, 2, ActKind::kNone)));
  b.finalize();
  EXPECT_THROW(b.finalize(), std::runtime_error);
}

TEST(Robustness, OddInputCountRejectedAtSimdLevels) {
  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  Rng rng(3);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 15, 4, ActKind::kNone));
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kXpulpSimd, core.tanh_table(),
                                   core.sig_table());
  EXPECT_THROW(b.add_fc(fc), std::runtime_error);
  // The baseline level handles odd inputs fine.
  kernels::NetworkProgramBuilder b2(&mem, OptLevel::kBaseline, core.tanh_table(),
                                    core.sig_table());
  b2.add_fc(fc);
  EXPECT_NO_THROW(b2.finalize());
}

TEST(Robustness, DeviceMemoryExhaustionThrows) {
  iss::Memory mem(1u << 17);  // 128 KiB: too small for a big layer
  iss::Core core(&mem);
  Rng rng(4);
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kInputTiling, core.tanh_table(),
                                   core.sig_table());
  EXPECT_THROW(b.add_fc(nn::quantize_fc(nn::random_fc(rng, 500, 300, ActKind::kNone))),
               std::runtime_error);
}

TEST(Robustness, WrongInputSizeToRunForwardThrows) {
  Rng rng(5);
  auto d = kernel_test::make_net(OptLevel::kBaseline,
                                 [&](kernels::NetworkProgramBuilder& b) {
                                   b.add_fc(nn::quantize_fc(
                                       nn::random_fc(rng, 8, 4, ActKind::kNone)));
                                 });
  const std::vector<int16_t> wrong(5, 0);
  EXPECT_THROW(kernels::run_forward(*d.core, *d.mem, d.net, wrong), std::runtime_error);
}

TEST(Robustness, ConvWithPaddingRejected) {
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  Rng rng(6);
  auto conv = nn::quantize_conv(nn::random_conv(rng, 2, 3, 3, ActKind::kNone, 1, /*pad=*/1));
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kBaseline, core.tanh_table(),
                                   core.sig_table());
  EXPECT_THROW(b.add_conv(conv, 8, 8), std::runtime_error);
}

TEST(Robustness, WeightRowBeyondAddiRangeRejected) {
  // cin > 1023 halfwords would overflow the addi-chained row stride.
  iss::Memory mem(64u << 20);
  iss::Core core(&mem);
  Rng rng(7);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 1200, 4, ActKind::kNone));
  kernels::NetworkProgramBuilder b(&mem, OptLevel::kOutputTiling, core.tanh_table(),
                                   core.sig_table());
  EXPECT_THROW(b.add_fc(fc), std::runtime_error);
}

TEST(Robustness, ProgramRunsOnlyAfterLoad) {
  // A reset core with no program traps on the first illegal word (zeroed
  // memory) instead of running garbage.
  iss::Memory mem(1u << 16);
  iss::Core core(&mem);
  core.reset(0x1000);
  const auto res = core.run(10);
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kTrap);
}

TEST(Robustness, CheckMessagesCarryContext) {
  try {
    iss::Memory mem(1u << 16);
    mem.load32(0xFFFFFFF0u);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

}  // namespace
}  // namespace rnnasip
