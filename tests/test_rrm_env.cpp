// Tests for the radio-environment models.
#include <gtest/gtest.h>

#include <cmath>

#include "src/rrm/env.h"

namespace rnnasip::rrm {
namespace {

TEST(GilbertElliott, Deterministic) {
  GilbertElliottChannels a(4, 123), b(4, 123);
  for (int t = 0; t < 50; ++t) {
    a.step();
    b.step();
    for (int c = 0; c < 4; ++c) EXPECT_EQ(a.busy(c), b.busy(c)) << t;
  }
}

TEST(GilbertElliott, OccupancyTracksTransitionProbabilities) {
  GilbertElliottChannels ch(8, 7, /*p_stay_busy=*/0.9, /*p_become_busy=*/0.1);
  // Stationary busy probability = p_become / (1 - p_stay + p_become) = 0.5.
  int busy = 0, total = 0;
  for (int t = 0; t < 2000; ++t) {
    ch.step();
    for (int c = 0; c < 8; ++c) {
      busy += ch.busy(c) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(busy) / total, 0.5, 0.05);
}

TEST(GilbertElliott, ObservationEncoding) {
  GilbertElliottChannels ch(3, 1);
  const auto obs = ch.observation();
  ASSERT_EQ(obs.size(), 3u);
  for (double v : obs) EXPECT_TRUE(v == 1.0 || v == -1.0);
}

TEST(InterferenceField, DirectLinkDominates) {
  InterferenceField f(6, 99);
  // Direct links are short (1-10 m), interference travels farther on
  // average: the diagonal should usually carry the largest gain per row.
  int dominant = 0;
  for (int i = 0; i < 6; ++i) {
    bool diag_best = true;
    for (int j = 0; j < 6; ++j) {
      if (j != i && f.gain(i, j) > f.gain(i, i)) diag_best = false;
    }
    dominant += diag_best ? 1 : 0;
  }
  EXPECT_GE(dominant, 4);
}

TEST(InterferenceField, SinrAndRateBehaveMonotonically) {
  InterferenceField f(4, 5);
  std::vector<double> p(4, 1.0);
  const auto s1 = f.sinr(p);
  // Raising own power raises own SINR and lowers everyone else's.
  p[0] = 4.0;
  const auto s2 = f.sinr(p);
  EXPECT_GT(s2[0], s1[0]);
  for (int i = 1; i < 4; ++i) EXPECT_LE(s2[i], s1[i] + 1e-12);
  // All-zero powers give zero rate.
  EXPECT_EQ(f.sum_rate(std::vector<double>(4, 0.0)), 0.0);
  EXPECT_GT(f.sum_rate(std::vector<double>(4, 1.0)), 0.0);
}

TEST(InterferenceField, NormalizedGainsInRange) {
  InterferenceField f(5, 17);
  const auto g = f.normalized_gains();
  ASSERT_EQ(g.size(), 25u);
  double lo = 1e9, hi = -1e9;
  for (double v : g) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(lo, -1.0, 1e-9);  // extremes map exactly to the interval ends
  EXPECT_NEAR(hi, 1.0, 1e-9);
}

TEST(InterferenceField, RefadePerturbsButPreservesScale) {
  InterferenceField f(4, 21);
  const double before = f.gain(0, 0);
  f.refade(0.5);
  const double after = f.gain(0, 0);
  EXPECT_NE(before, after);
  EXPECT_GT(after, before / 10.0);
  EXPECT_LT(after, before * 10.0);
}

}  // namespace
}  // namespace rnnasip::rrm
