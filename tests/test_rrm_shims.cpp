// The deprecated rrm::run_network / rrm::run_suite shims must stay
// bit-identical to the rrm::Engine they forward to for one release. This
// test is intentionally the only in-tree caller of the free functions.
#include <gtest/gtest.h>

#include "src/rrm/engine.h"
#include "src/rrm/suite.h"

using namespace rnnasip;
using kernels::OptLevel;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(RrmShims, RunNetworkMatchesEngineRun) {
  const rrm::RrmNetwork net(rrm::find_network("ahmed19"));
  rrm::RunOptions opt;
  opt.timesteps = 2;
  const auto legacy = rrm::run_network(net, OptLevel::kInputTiling, opt);

  rrm::Engine engine;
  rrm::Request req;
  req.network = "ahmed19";
  req.level = OptLevel::kInputTiling;
  req.timesteps = 2;
  const auto modern = engine.run(req);

  EXPECT_TRUE(legacy.completed);
  EXPECT_TRUE(legacy.verified);
  EXPECT_EQ(legacy.cycles, modern.result.cycles);
  EXPECT_EQ(legacy.instrs, modern.result.instrs);
  EXPECT_EQ(legacy.verified, modern.result.verified);
}

TEST(RrmShims, RunSuiteMatchesEngineRunSuite) {
  rrm::RunOptions opt;
  const auto legacy = rrm::run_suite(OptLevel::kLoadCompute, opt);

  rrm::Engine engine;
  const auto modern = engine.run_suite(OptLevel::kLoadCompute);

  ASSERT_EQ(legacy.nets.size(), modern.nets.size());
  for (size_t i = 0; i < legacy.nets.size(); ++i) {
    EXPECT_EQ(legacy.nets[i].name, modern.nets[i].name);
    EXPECT_EQ(legacy.nets[i].cycles, modern.nets[i].cycles) << legacy.nets[i].name;
    EXPECT_EQ(legacy.nets[i].verified, modern.nets[i].verified) << legacy.nets[i].name;
  }
  EXPECT_EQ(legacy.total_cycles, modern.total_cycles);
}

#pragma GCC diagnostic pop
