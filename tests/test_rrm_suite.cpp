// Integration tests over the full RRM benchmark suite: every network at
// every optimization level verifies bit-exactly against the golden model,
// cycles improve monotonically with the optimization level, and the
// suite-level speedups land in the paper's Table I band.
#include <gtest/gtest.h>

#include "src/rrm/suite.h"

namespace rnnasip::rrm {
namespace {

using kernels::OptLevel;

struct SuiteCase {
  const char* name;
  OptLevel level;
};

class RrmNet : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(RrmNet, VerifiesBitExactAgainstGolden) {
  const auto& p = GetParam();
  RrmNetwork net(find_network(p.name));
  RunOptions opt;
  opt.timesteps = net.has_lstm() ? 3 : 1;
  const auto r = run_network(net, p.level, opt);
  EXPECT_TRUE(r.verified) << p.name;
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.cycles, r.instrs);  // stalls/penalties only add cycles
}

std::vector<SuiteCase> all_cases() {
  std::vector<SuiteCase> cases;
  for (const auto& def : rrm_suite()) {
    for (auto level : kernels::kAllOptLevels) {
      cases.push_back({def.name.c_str(), level});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllNetsAllLevels, RrmNet, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<SuiteCase>& i) {
                           return std::string(i.param.name) + "_" +
                                  kernels::opt_level_letter(i.param.level);
                         });

TEST(RrmSuite, SuiteHasTenNetworksInFig3Order) {
  const auto& suite = rrm_suite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].reference, "[13]");
  EXPECT_EQ(suite[1].reference, "[14]");
  EXPECT_EQ(suite[2].reference, "[3]");
  EXPECT_EQ(suite[9].reference, "[17]");
}

TEST(RrmSuite, CyclesImproveMonotonicallyOnLargeNets) {
  // The big FC nets must gain at every optimization step (the paper's small
  // nets can lose a little at level e; the large ones must not).
  for (const char* name : {"wang18", "yu17", "ye18"}) {
    RrmNetwork net(find_network(name));
    uint64_t prev = UINT64_MAX;
    for (auto level : kernels::kAllOptLevels) {
      const auto r = run_network(net, level);
      EXPECT_LT(r.cycles, prev)
          << name << " level " << kernels::opt_level_letter(level);
      prev = r.cycles;
    }
  }
}

TEST(RrmSuite, SuiteSpeedupsMatchTableIBands) {
  // Table I cumulative speedups: 4.4x (b), 8.4x (c), 14.3x (d), 15.0x (e).
  // We assert generous bands around those shapes.
  RunOptions opt;
  opt.verify = false;  // speed: correctness covered above
  const auto base = run_suite(OptLevel::kBaseline, opt);
  const auto b = run_suite(OptLevel::kXpulpSimd, opt);
  const auto c = run_suite(OptLevel::kOutputTiling, opt);
  const auto d = run_suite(OptLevel::kLoadCompute, opt);
  const auto e = run_suite(OptLevel::kInputTiling, opt);

  const auto speedup = [&](const SuiteResult& s) {
    return static_cast<double>(base.total_cycles) / static_cast<double>(s.total_cycles);
  };
  EXPECT_GT(speedup(b), 3.2);
  EXPECT_LT(speedup(b), 5.5);
  EXPECT_GT(speedup(c), 6.5);
  EXPECT_LT(speedup(c), 10.5);
  EXPECT_GT(speedup(d), 11.0);
  EXPECT_LT(speedup(d), 17.5);
  EXPECT_GT(speedup(e), 12.0);
  EXPECT_LT(speedup(e), 19.0);
  // Each stage improves the suite total.
  EXPECT_LT(b.total_cycles, base.total_cycles);
  EXPECT_LT(c.total_cycles, b.total_cycles);
  EXPECT_LT(d.total_cycles, c.total_cycles);
  EXPECT_LE(e.total_cycles, d.total_cycles);
}

TEST(RrmSuite, SmallNetsGainLessFromTiling) {
  // Fig. 3: ahmed19 [3] and eisen19 [33] show the smallest speedups.
  RunOptions opt;
  opt.verify = false;
  const auto base = run_suite(OptLevel::kBaseline, opt);
  const auto e = run_suite(OptLevel::kInputTiling, opt);
  auto speedup_of = [&](const char* name) {
    double b = 0, v = 0;
    for (const auto& r : base.nets)
      if (r.name == name) b = static_cast<double>(r.cycles);
    for (const auto& r : e.nets)
      if (r.name == name) v = static_cast<double>(r.cycles);
    return b / v;
  };
  const double small_avg = (speedup_of("ahmed19") + speedup_of("eisen19")) / 2;
  const double big_avg = (speedup_of("wang18") + speedup_of("yu17")) / 2;
  EXPECT_LT(small_avg, big_avg * 0.8);
}

TEST(RrmSuite, LstmStatePersistsAcrossTimestepsOnDevice) {
  RrmNetwork net(find_network("naparstek17"));
  RunOptions opt;
  opt.timesteps = 4;
  const auto r = run_network(net, OptLevel::kInputTiling, opt);
  EXPECT_TRUE(r.verified);  // golden is stateful too; a mismatch would show
}

TEST(RrmSuite, CoreConfigPropagatesToRuns) {
  RrmNetwork net(find_network("eisen19"));
  RunOptions plain;
  plain.verify = false;
  RunOptions slow = plain;
  slow.core_config.timing.mem_wait_states = 2;
  const auto fast = run_network(net, kernels::OptLevel::kInputTiling, plain);
  const auto waits = run_network(net, kernels::OptLevel::kInputTiling, slow);
  EXPECT_GT(waits.cycles, fast.cycles);
  EXPECT_EQ(waits.instrs, fast.instrs);  // wait states add cycles only
}

TEST(RrmSuite, MaxTileOptionChangesSchedule) {
  RrmNetwork net(find_network("wang18"));
  RunOptions wide;
  wide.verify = false;
  wide.max_tile = 8;
  RunOptions narrow = wide;
  narrow.max_tile = 2;
  const auto w = run_network(net, kernels::OptLevel::kOutputTiling, wide);
  const auto n = run_network(net, kernels::OptLevel::kOutputTiling, narrow);
  EXPECT_LT(w.cycles, n.cycles);  // larger tiles share more input loads
}

TEST(RrmSuite, NominalMacCounts) {
  // Sanity: the suite totals about 1M MACs per inference pass, dominated by
  // the large DQN stacks.
  uint64_t total = 0;
  for (const auto& def : rrm_suite()) total += RrmNetwork(def).nominal_macs();
  EXPECT_GT(total, 700'000u);
  EXPECT_LT(total, 1'500'000u);
}

}  // namespace
}  // namespace rnnasip::rrm
