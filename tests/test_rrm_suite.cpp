// Integration tests over the full RRM benchmark suite: every network at
// every optimization level verifies bit-exactly against the golden model,
// cycles improve monotonically with the optimization level, and the
// suite-level speedups land in the paper's Table I band.
#include <gtest/gtest.h>

#include "src/rrm/engine.h"

namespace rnnasip::rrm {
namespace {

using kernels::OptLevel;

struct SuiteCase {
  const char* name;
  OptLevel level;
};

class RrmNet : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(RrmNet, VerifiesBitExactAgainstGolden) {
  const auto& p = GetParam();
  RrmNetwork net(find_network(p.name));
  Engine eng;
  Request req;
  req.network = p.name;
  req.level = p.level;
  req.timesteps = net.has_lstm() ? 3 : 1;
  const auto r = eng.run(req).result;
  EXPECT_TRUE(r.verified) << p.name;
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.cycles, r.instrs);  // stalls/penalties only add cycles
}

std::vector<SuiteCase> all_cases() {
  std::vector<SuiteCase> cases;
  for (const auto& def : rrm_suite()) {
    for (auto level : kernels::kAllOptLevels) {
      cases.push_back({def.name.c_str(), level});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllNetsAllLevels, RrmNet, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<SuiteCase>& i) {
                           return std::string(i.param.name) + "_" +
                                  kernels::opt_level_letter(i.param.level);
                         });

TEST(RrmSuite, SuiteHasTenNetworksInFig3Order) {
  const auto& suite = rrm_suite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].reference, "[13]");
  EXPECT_EQ(suite[1].reference, "[14]");
  EXPECT_EQ(suite[2].reference, "[3]");
  EXPECT_EQ(suite[9].reference, "[17]");
}

TEST(RrmSuite, CyclesImproveMonotonicallyOnLargeNets) {
  // The big FC nets must gain at every optimization step (the paper's small
  // nets can lose a little at level e; the large ones must not).
  Engine eng;
  for (const char* name : {"wang18", "yu17", "ye18"}) {
    uint64_t prev = UINT64_MAX;
    for (auto level : kernels::kAllOptLevels) {
      Request req;
      req.network = name;
      req.level = level;
      const auto r = eng.run(req).result;
      EXPECT_LT(r.cycles, prev)
          << name << " level " << kernels::opt_level_letter(level);
      prev = r.cycles;
    }
  }
}

TEST(RrmSuite, SuiteSpeedupsMatchTableIBands) {
  // Table I cumulative speedups: 4.4x (b), 8.4x (c), 14.3x (d), 15.0x (e).
  // We assert generous bands around those shapes.
  Engine eng;
  Request proto;
  proto.verify = false;  // speed: correctness covered above
  const auto base = eng.run_suite(OptLevel::kBaseline, proto);
  const auto b = eng.run_suite(OptLevel::kXpulpSimd, proto);
  const auto c = eng.run_suite(OptLevel::kOutputTiling, proto);
  const auto d = eng.run_suite(OptLevel::kLoadCompute, proto);
  const auto e = eng.run_suite(OptLevel::kInputTiling, proto);

  const auto speedup = [&](const SuiteResult& s) {
    return static_cast<double>(base.total_cycles) / static_cast<double>(s.total_cycles);
  };
  EXPECT_GT(speedup(b), 3.2);
  EXPECT_LT(speedup(b), 5.5);
  EXPECT_GT(speedup(c), 6.5);
  EXPECT_LT(speedup(c), 10.5);
  EXPECT_GT(speedup(d), 11.0);
  EXPECT_LT(speedup(d), 17.5);
  EXPECT_GT(speedup(e), 12.0);
  EXPECT_LT(speedup(e), 19.0);
  // Each stage improves the suite total.
  EXPECT_LT(b.total_cycles, base.total_cycles);
  EXPECT_LT(c.total_cycles, b.total_cycles);
  EXPECT_LT(d.total_cycles, c.total_cycles);
  EXPECT_LE(e.total_cycles, d.total_cycles);
}

TEST(RrmSuite, SmallNetsGainLessFromTiling) {
  // Fig. 3: ahmed19 [3] and eisen19 [33] show the smallest speedups.
  Engine eng;
  Request proto;
  proto.verify = false;
  const auto base = eng.run_suite(OptLevel::kBaseline, proto);
  const auto e = eng.run_suite(OptLevel::kInputTiling, proto);
  auto speedup_of = [&](const char* name) {
    double b = 0, v = 0;
    for (const auto& r : base.nets)
      if (r.name == name) b = static_cast<double>(r.cycles);
    for (const auto& r : e.nets)
      if (r.name == name) v = static_cast<double>(r.cycles);
    return b / v;
  };
  const double small_avg = (speedup_of("ahmed19") + speedup_of("eisen19")) / 2;
  const double big_avg = (speedup_of("wang18") + speedup_of("yu17")) / 2;
  EXPECT_LT(small_avg, big_avg * 0.8);
}

TEST(RrmSuite, LstmStatePersistsAcrossTimestepsOnDevice) {
  Engine eng;
  Request req;
  req.network = "naparstek17";
  req.level = OptLevel::kInputTiling;
  req.timesteps = 4;
  EXPECT_TRUE(eng.run(req).result.verified);  // golden is stateful too
}

TEST(RrmSuite, CoreConfigPropagatesToRuns) {
  Engine::Config slow_cfg;
  slow_cfg.core_config.timing.mem_wait_states = 2;
  Engine plain_eng;
  Engine slow_eng(slow_cfg);
  Request req;
  req.network = "eisen19";
  req.level = kernels::OptLevel::kInputTiling;
  req.verify = false;
  const auto fast = plain_eng.run(req).result;
  const auto waits = slow_eng.run(req).result;
  EXPECT_GT(waits.cycles, fast.cycles);
  EXPECT_EQ(waits.instrs, fast.instrs);  // wait states add cycles only
}

TEST(RrmSuite, MaxTileOptionChangesSchedule) {
  Engine::Config wide_cfg;
  wide_cfg.max_tile = 8;
  Engine::Config narrow_cfg;
  narrow_cfg.max_tile = 2;
  Engine wide_eng(wide_cfg);
  Engine narrow_eng(narrow_cfg);
  Request req;
  req.network = "wang18";
  req.level = kernels::OptLevel::kOutputTiling;
  req.verify = false;
  const auto w = wide_eng.run(req).result;
  const auto n = narrow_eng.run(req).result;
  EXPECT_LT(w.cycles, n.cycles);  // larger tiles share more input loads
}

TEST(RrmSuite, NominalMacCounts) {
  // Sanity: the suite totals about 1M MACs per inference pass, dominated by
  // the large DQN stacks.
  uint64_t total = 0;
  for (const auto& def : rrm_suite()) total += RrmNetwork(def).nominal_macs();
  EXPECT_GT(total, 700'000u);
  EXPECT_LT(total, 1'500'000u);
}

}  // namespace
}  // namespace rnnasip::rrm
