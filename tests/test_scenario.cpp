// Scenario subsystem contracts (src/scenario + src/serve brownout):
//   - city traffic is byte-deterministic from the seed and correlated
//     (diurnal bounds, scripted surges, storm windows),
//   - the closed loop applies decisions / decays stale powers as specified,
//   - the brownout controller escalates under pressure, de-escalates
//     hysteretically within its provable recovery bound, and sheds
//     lowest-value cells first,
//   - the scenario engine is byte-deterministic end to end and upholds the
//     robustness invariants (zero admitted misses, zero silent corruption).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/scenario/city.h"
#include "src/scenario/engine.h"
#include "src/serve/brownout.h"

using namespace rnnasip;

namespace {

scenario::CityConfig small_city(uint64_t seed = 0xC17) {
  scenario::CityConfig cfg;
  cfg.cells = 4;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

TEST(ScenarioCity, DiurnalCurveStaysInsideItsBand) {
  scenario::DiurnalCurve d;
  double lo = 1e9, hi = -1e9;
  for (int t = 0; t < 3 * d.period_ttis; ++t) {
    const double v = d.at(t);
    EXPECT_GE(v, d.floor - 1e-12);
    EXPECT_LE(v, d.peak + 1e-12);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // The curve actually spans the band (it is not a constant).
  EXPECT_NEAR(lo, d.floor, 1e-9);
  EXPECT_NEAR(hi, d.peak, 1e-9);
  // Peak lands at the configured phase.
  EXPECT_NEAR(d.at(d.phase_ttis), d.peak, 1e-9);
}

TEST(ScenarioCity, TrafficIsByteDeterministicFromTheSeed) {
  scenario::City a(small_city()), b(small_city());
  for (int t = 0; t < 32; ++t) {
    EXPECT_EQ(a.draw_arrivals(t), b.draw_arrivals(t)) << "tti " << t;
    for (int c = 0; c < a.cell_count(); ++c) {
      EXPECT_EQ(a.offered_rate(c), b.offered_rate(c));
      EXPECT_EQ(a.observe(c, 8), b.observe(c, 8));
    }
  }
  // A different seed produces a different request stream somewhere.
  scenario::City other(small_city(0xD1FF));
  bool diverged = false;
  for (int t = 0; t < 32 && !diverged; ++t) {
    diverged = a.draw_arrivals(t) != other.draw_arrivals(t);
  }
  EXPECT_TRUE(diverged);
}

TEST(ScenarioCity, ScriptedSurgeAndStormWindowsAreExact) {
  auto cfg = small_city();
  cfg.surges = {{1, 4, 8, 6.0}};
  cfg.storms = {{2, 6, 10, 100.0}};
  scenario::City city(cfg);
  for (int t = 0; t < 16; ++t) {
    city.draw_arrivals(t);
    // Storm multiplier: exactly the scripted factor inside the window on
    // the stormed cell, exactly 1 everywhere else.
    for (int c = 0; c < city.cell_count(); ++c) {
      const bool in_storm = c == 2 && t >= 6 && t < 10;
      EXPECT_EQ(city.storm_multiplier(c, t), in_storm ? 100.0 : 1.0)
          << "cell " << c << " tti " << t;
    }
    EXPECT_EQ(city.in_stress(1, t), t >= 4 && t < 8);
    EXPECT_EQ(city.in_stress(2, t), t >= 6 && t < 10);
    EXPECT_EQ(city.any_stress(t), t >= 4 && t < 10);
  }
  EXPECT_EQ(city.stress_end_tti(), 10);
}

TEST(ScenarioCity, SurgeMultipliesTheOfferedRate) {
  // Same seed with and without the scripted surge: on the surged cell and
  // TTI the offered rate is exactly `multiplier`x the unsurged rate (the
  // clamp aside), because the two cities' traffic chains stay in lockstep
  // until the first arrival draw of that TTI.
  auto plain_cfg = small_city();
  auto surged_cfg = small_city();
  surged_cfg.surges = {{0, 3, 4, 5.0}};
  scenario::City plain(plain_cfg), surged(surged_cfg);
  for (int t = 0; t < 3; ++t) {
    ASSERT_EQ(plain.draw_arrivals(t), surged.draw_arrivals(t));
  }
  plain.draw_arrivals(3);
  surged.draw_arrivals(3);
  const double expect = std::min(plain.offered_rate(0) * 5.0,
                                 scenario::City::kMaxRate);
  EXPECT_NEAR(surged.offered_rate(0), expect, 1e-12);
}

TEST(ScenarioCity, StaleDecisionsDecayAndFreshOnesApply) {
  auto cfg = small_city();
  scenario::City city(cfg);
  // A full-scale sigmoid decision (Q3.12 "4095/4096") is ~full power.
  std::vector<int16_t> outputs(4, 4095);
  city.apply_decision(0, outputs);
  const auto applied = city.powers(0);
  for (double p : applied) {
    EXPECT_NEAR(p, cfg.p_max * 4095.0 / 4096.0, 1e-12);
  }
  // Each missed TTI multiplies every pair's power by power_decay.
  city.carry_stale(0);
  city.carry_stale(0);
  const auto stale = city.powers(0);
  for (size_t i = 0; i < stale.size(); ++i) {
    EXPECT_NEAR(stale[i], applied[i] * cfg.power_decay * cfg.power_decay,
                1e-12);
  }
  // Decayed powers score a lower achieved rate on the same field.
  scenario::City fresh_city(cfg);
  fresh_city.apply_decision(0, outputs);
  EXPECT_LT(city.achieved_rate(0), fresh_city.achieved_rate(0));
}

namespace {

/// Publish per-cell and cluster pressure gauges the way the engine does.
void publish(obs::MetricsRegistry& m, const std::vector<double>& cell_pressure,
             double cluster_pressure) {
  for (size_t c = 0; c < cell_pressure.size(); ++c) {
    m.gauge("cell" + std::to_string(c) + ".pressure_x1000")
        .set(static_cast<int64_t>(cell_pressure[c] * 1000.0));
  }
  m.gauge("cluster.pressure_x1000")
      .set(static_cast<int64_t>(cluster_pressure * 1000.0));
}

}  // namespace

TEST(Brownout, EscalatesUnderPressureAndRecoversWithinTheBound) {
  serve::BrownoutConfig cfg;  // enter 1.5, exit 0.75, hold 3
  serve::BrownoutController ctl(cfg, {1.0, 2.0});
  obs::MetricsRegistry m;
  uint64_t now = 0;

  // Sustained pressure on cell 0 escalates one level per evaluation up to
  // kCritical; cell 1 stays normal.
  publish(m, {2.0, 0.0}, 0.5);
  ctl.evaluate(m, now++);
  EXPECT_EQ(ctl.level(0), serve::ServiceLevel::kEconomy);
  ctl.evaluate(m, now++);
  EXPECT_EQ(ctl.level(0), serve::ServiceLevel::kCritical);
  ctl.evaluate(m, now++);
  EXPECT_EQ(ctl.level(0), serve::ServiceLevel::kCritical) << "escalation past "
      "critical must go through the cluster shed path, not per-cell pressure";
  EXPECT_EQ(ctl.level(1), serve::ServiceLevel::kNormal);
  EXPECT_GT(ctl.admission_margin(0), 1.0);
  EXPECT_EQ(ctl.admission_margin(1), 1.0);

  // Calm evaluations: hysteretic de-escalation, one level per hold_evals,
  // fully normal within the provable bound.
  publish(m, {0.0, 0.0}, 0.0);
  int evals = 0;
  while (!ctl.all_normal()) {
    ASSERT_LT(evals, ctl.recovery_bound_evals()) << "recovery bound violated";
    ctl.evaluate(m, now++);
    ++evals;
  }
  EXPECT_EQ(evals, 2 * cfg.hold_evals);  // critical -> economy -> normal
  EXPECT_EQ(ctl.admission_margin(0), 1.0);
  // Every level change was recorded.
  EXPECT_EQ(ctl.transitions().size(), 4u);
}

TEST(Brownout, ShedsLowestValueCellsFirstAndRespectsTheFloor) {
  serve::BrownoutConfig cfg;
  cfg.shed_pressure = 2.0;
  cfg.min_live_cells = 2;
  // Values rank shedding: cell 2 (value 1) first, then cell 0 (value 3);
  // cells 1 and 3 are the floor survivors.
  serve::BrownoutController ctl(cfg, {3.0, 8.0, 1.0, 9.0});
  obs::MetricsRegistry m;
  publish(m, {0.0, 0.0, 0.0, 0.0}, 5.0);  // cluster melting, cells "calm"
  ctl.evaluate(m, 0);
  EXPECT_TRUE(ctl.shed(2)) << "lowest-value cell sheds first";
  EXPECT_FALSE(ctl.shed(0));
  ctl.evaluate(m, 1);
  EXPECT_TRUE(ctl.shed(0)) << "one more cell per evaluation, value order";
  // The floor: never below min_live_cells, whatever the pressure.
  ctl.evaluate(m, 2);
  ctl.evaluate(m, 3);
  EXPECT_FALSE(ctl.shed(1));
  EXPECT_FALSE(ctl.shed(3));
  int live = 0;
  for (int c = 0; c < ctl.cell_count(); ++c) live += ctl.shed(c) ? 0 : 1;
  EXPECT_EQ(live, 2);
}

namespace {

scenario::ScenarioConfig small_scenario(uint64_t seed = 0x7E57) {
  scenario::ScenarioConfig cfg;
  cfg.city.cells = 4;
  cfg.city.base_rate = 1.0;
  cfg.city.seed = derive_stream(seed, 100);
  cfg.cores = 2;
  cfg.ttis = 10;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

TEST(ScenarioEngine, RunIsByteDeterministic) {
  const auto cfg = small_scenario();
  scenario::ScenarioEngine a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(scenario::scenario_result_to_json(cfg, ra).dump_pretty(),
            scenario::scenario_result_to_json(cfg, rb).dump_pretty());
  EXPECT_GT(ra.requests, 0u);
  EXPECT_GT(ra.served, 0u);
}

TEST(ScenarioEngine, RobustnessInvariantsHoldUnderAStorm) {
  auto cfg = small_scenario(0x57AB);
  cfg.city.surges = {{1, 2, 6, 6.0}};
  cfg.city.storms = {{1, 2, 6, 1000.0}};
  cfg.base_fault.rate_of(fault::Target::kRegFile) = 5e-7;
  cfg.base_fault.rate_of(fault::Target::kPlaLut) = 5e-5;
  cfg.base_fault.seed = cfg.seed;
  scenario::ScenarioEngine engine(cfg);
  const auto r = engine.run();
  EXPECT_GT(r.requests, 0u);
  EXPECT_GT(r.served, 0u);
  // The two structural guarantees hold under any storm: provable admission
  // never admits a miss, and no unverified decision reaches the city.
  EXPECT_EQ(r.deadline_misses_admitted, 0u);
  EXPECT_EQ(r.silent_to_env, 0u);
  // The stress accounting covered the storm window.
  EXPECT_GT(r.stress_oracle, 0.0);
  EXPECT_EQ(r.stress_end_tti, 6);
}

TEST(ScenarioEngine, BrownoutDisabledServesEveryCellAtThePrimaryLevel) {
  auto cfg = small_scenario(0xB10D);
  cfg.brownout = false;
  scenario::ScenarioEngine engine(cfg);
  const auto r = engine.run();
  EXPECT_EQ(r.served_fallback, 0u);
  EXPECT_EQ(r.shed_rejected, 0u);
  EXPECT_TRUE(r.transitions.empty());
  for (const auto& t : r.ttis) {
    EXPECT_EQ(t.level_counts[0], cfg.city.cells);
  }
}
