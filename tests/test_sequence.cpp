// Device-driven sequence execution tests: the whole T-step recurrent
// inference runs as one program, staging inputs/outputs through device
// arrays — results must match T host-driven single steps bit-exactly.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

namespace rnnasip {
namespace {

using kernels::OptLevel;
using nn::ActKind;

struct SeqNet {
  std::unique_ptr<iss::Memory> mem;
  std::unique_ptr<iss::Core> core;
  kernels::BuiltNetwork net;
};

template <typename AddLayers>
SeqNet make_seq(OptLevel level, int steps, const AddLayers& add) {
  SeqNet d;
  d.mem = std::make_unique<iss::Memory>(16u << 20);
  d.core = std::make_unique<iss::Core>(d.mem.get());
  kernels::NetworkProgramBuilder b(d.mem.get(), level, d.core->tanh_table(),
                                   d.core->sig_table(), 8, steps);
  add(b);
  d.net = b.finalize();
  d.core->load_program(d.net.program);
  return d;
}

TEST(Sequence, LstmSequenceMatchesHostDrivenSteps) {
  Rng rng(0x5E9);
  const int steps = 6;
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, 8, 16, 0.3f));
  const auto head = nn::quantize_fc(nn::random_fc(rng, 16, 4, ActKind::kNone));

  std::vector<int16_t> inputs;
  std::vector<std::vector<int16_t>> per_step;
  for (int t = 0; t < steps; ++t) {
    per_step.push_back(nn::quantize_vector(nn::random_vector(rng, 8, 1.0f)));
    inputs.insert(inputs.end(), per_step.back().begin(), per_step.back().end());
  }

  for (auto level : {OptLevel::kBaseline, OptLevel::kOutputTiling, OptLevel::kInputTiling}) {
    auto seq = make_seq(level, steps, [&](kernels::NetworkProgramBuilder& b) {
      b.add_lstm(lstm);
      b.add_fc(head);
    });
    const auto got = kernels::run_sequence(*seq.core, *seq.mem, seq.net, inputs);
    ASSERT_EQ(got.size(), static_cast<size_t>(steps * 4));

    // Host-driven reference: a non-sequence build stepped T times.
    auto ref = make_seq(level, 1, [&](kernels::NetworkProgramBuilder& b) {
      b.add_lstm(lstm);
      b.add_fc(head);
    });
    kernels::reset_state(*ref.mem, ref.net);
    for (int t = 0; t < steps; ++t) {
      const auto out = kernels::run_forward(*ref.core, *ref.mem, ref.net, per_step[t]);
      for (int j = 0; j < 4; ++j) {
        ASSERT_EQ(got[static_cast<size_t>(t * 4 + j)], out[static_cast<size_t>(j)])
            << "level " << kernels::opt_level_letter(level) << " t=" << t << " j=" << j;
      }
    }
  }
}

TEST(Sequence, FcFirstNetworkStagesThroughInputBuffer) {
  // Non-recurrent networks also work in sequence mode (batch evaluation).
  Rng rng(0x5EA);
  const int steps = 5;
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 12, 6, ActKind::kReLU));
  auto seq = make_seq(OptLevel::kInputTiling, steps,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc); });
  std::vector<int16_t> inputs;
  std::vector<std::vector<int16_t>> per_step;
  for (int t = 0; t < steps; ++t) {
    per_step.push_back(nn::quantize_vector(nn::random_vector(rng, 12, 1.0f)));
    inputs.insert(inputs.end(), per_step.back().begin(), per_step.back().end());
  }
  const auto got = kernels::run_sequence(*seq.core, *seq.mem, seq.net, inputs);
  for (int t = 0; t < steps; ++t) {
    const auto want = nn::fc_forward_fixp(fc, per_step[t], seq.core->tanh_table(),
                                          seq.core->sig_table());
    for (int j = 0; j < 6; ++j) {
      ASSERT_EQ(got[static_cast<size_t>(t * 6 + j)], want[static_cast<size_t>(j)]) << t;
    }
  }
}

TEST(Sequence, RerunningReproducesResults) {
  Rng rng(0x5EB);
  const auto gru = nn::quantize_gru(nn::random_gru(rng, 6, 12, 0.3f));
  auto seq = make_seq(OptLevel::kLoadCompute, 4,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_gru(gru); });
  std::vector<int16_t> inputs(4 * 6);
  for (auto& v : inputs) v = static_cast<int16_t>(quantize(rng.next_in(-1, 1)));
  const auto a = kernels::run_sequence(*seq.core, *seq.mem, seq.net, inputs);
  const auto b = kernels::run_sequence(*seq.core, *seq.mem, seq.net, inputs);
  EXPECT_EQ(a, b);  // cursors and state fully re-armed
}

TEST(Sequence, PerStepOverheadIsLowerThanHostDriven) {
  // Device-driven sequencing amortizes the program-entry/-exit overhead.
  Rng rng(0x5EC);
  const int steps = 16;
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, 8, 16, 0.3f));
  auto seq = make_seq(OptLevel::kInputTiling, steps,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lstm); });
  std::vector<int16_t> inputs(static_cast<size_t>(steps) * 8, 0);
  kernels::run_sequence(*seq.core, *seq.mem, seq.net, inputs);
  const uint64_t seq_cycles = seq.core->stats().total_cycles();

  auto ref = make_seq(OptLevel::kInputTiling, 1,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_lstm(lstm); });
  kernels::reset_state(*ref.mem, ref.net);
  const std::vector<int16_t> x(8, 0);
  for (int t = 0; t < steps; ++t) kernels::run_forward(*ref.core, *ref.mem, ref.net, x);
  const uint64_t host_cycles = ref.core->stats().total_cycles();

  // The device-driven version pays the input/output staging copies but
  // amortizes nothing else; it must stay within a few percent.
  EXPECT_LT(seq_cycles, host_cycles * 1.15);
}

TEST(Sequence, RejectsWrongInputLength) {
  Rng rng(0x5EE);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 8, 4, ActKind::kNone));
  auto seq = make_seq(OptLevel::kBaseline, 3,
                      [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc); });
  const std::vector<int16_t> too_short(2 * 8, 0);  // needs 3 steps x 8
  EXPECT_THROW(kernels::run_sequence(*seq.core, *seq.mem, seq.net, too_short),
               std::runtime_error);
}

TEST(Sequence, RunSequenceRejectsNonSequenceNet) {
  Rng rng(0x5ED);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 8, 4, ActKind::kNone));
  auto plain = make_seq(OptLevel::kBaseline, 1,
                        [&](kernels::NetworkProgramBuilder& b) { b.add_fc(fc); });
  const std::vector<int16_t> inputs(8, 0);
  EXPECT_THROW(kernels::run_sequence(*plain.core, *plain.mem, plain.net, inputs),
               std::runtime_error);
}

}  // namespace
}  // namespace rnnasip
