// Serving subsystem contracts (src/serve):
//   - the shared weight segment is read-only from every core (stores trap),
//   - scheduling is deterministic (same seed => byte-identical JSON),
//   - batched execution is bit-exact per request vs an rrm::Engine single
//     run,
//   - the latency accounting identity holds for every completion.
#include <gtest/gtest.h>

#include "src/asm/builder.h"
#include "src/rrm/engine.h"
#include "src/serve/cluster.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

const std::vector<std::string> kFcNets = {"ahmed19", "eisen19", "nasir18"};
const std::vector<std::string> kMixedNets = {"ahmed19", "naparstek17", "eisen19"};

serve::ClusterConfig cluster_config(int cores, int batch) {
  serve::ClusterConfig cfg;
  cfg.cores = cores;
  cfg.batch = batch;
  cfg.level = OptLevel::kInputTiling;
  return cfg;
}

serve::Workload small_workload(const serve::Cluster& cluster,
                               const std::vector<std::string>& nets, int requests,
                               uint64_t seed) {
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = requests;
  wc.mean_interarrival_cycles = 3000;  // saturating for these nets
  wc.seed = seed;
  return serve::make_poisson_workload(cluster, wc);
}

}  // namespace

TEST(ServeCluster, SharedWeightSegmentIsReadOnlyFromEveryCore) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  for (int core = 0; core < cluster.cores(); ++core) {
    cluster.bind(core, "ahmed19", /*batched=*/false);
    const uint32_t w = cluster.param_base("ahmed19");
    ASSERT_NE(w, 0u);
    // Host-side stores go through the same resolver the core uses.
    try {
      cluster.memory(core).store16(w, 0x7FFF);
      FAIL() << "store into the shared weight segment did not trap";
    } catch (const iss::TrapException& e) {
      EXPECT_EQ(e.cause(), iss::TrapCause::kMemWriteProtected);
    }
    // Loads from the same address are fine.
    (void)cluster.memory(core).load16(w);
  }
}

TEST(ServeCluster, StoreToWeightsFromRunningProgramTraps) {
  serve::Cluster cluster(cluster_config(1, 1), kFcNets);
  cluster.bind(0, "ahmed19", false);
  const uint32_t w = cluster.param_base("ahmed19");
  const uint32_t bytes = cluster.param_bytes("ahmed19");
  ASSERT_GT(bytes, 0u);
  // Hand-written program: sh x0 -> weight segment. The bound image maps
  // text read-only too, so unmap everything and remap only the weights —
  // the hand program then loads into private flat storage.
  cluster.memory(0).unmap_segments();
  cluster.memory(0).map_segment(
      w, std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(bytes)),
      /*read_only=*/true);
  assembler::ProgramBuilder b(kernels::kTextBase);
  assembler::RegPool pool;
  const auto rA = pool.alloc();
  b.li(rA, static_cast<int32_t>(w));
  b.sh(isa::kZero, 0, rA);
  b.ebreak();
  const auto prog = b.build();
  iss::Core& core = cluster.core(0);
  core.load_program(prog);
  core.reset(prog.base);
  const auto res = core.run();
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(res.trap.cause, iss::TrapCause::kMemWriteProtected);
  EXPECT_EQ(res.trap.addr, w);
}

TEST(ServeScheduler, SameSeedGivesByteIdenticalJson) {
  auto run_once = [] {
    serve::Cluster cluster(cluster_config(4, 4), kFcNets);
    serve::Scheduler sched(&cluster, serve::Policy::kBatched);
    const auto workload = small_workload(cluster, kFcNets, 40, 0x5EED);
    return serve_result_to_json(sched.run(workload), 500.0).dump_pretty();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ServeScheduler, DifferentSeedChangesTheWorkload) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto a = serve_result_to_json(
      sched.run(small_workload(cluster, kFcNets, 30, 1)), 500.0);
  const auto b = serve_result_to_json(
      sched.run(small_workload(cluster, kFcNets, 30, 2)), 500.0);
  EXPECT_NE(a.dump_pretty(), b.dump_pretty());
}

TEST(ServeScheduler, BatchedOutputsBitExactVsEngineSingleRun) {
  // Level c: the 2-D tiled batched program is a genuinely different
  // schedule from the single-sample one, so bit-exactness is non-trivial
  // there (at d/e the batched program is the fused per-sample loop and
  // partial groups are not coalesced at all — see scheduler.cpp).
  auto cfg = cluster_config(2, 4);
  cfg.level = OptLevel::kOutputTiling;
  serve::Cluster cluster(cfg, kMixedNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto workload = small_workload(cluster, kMixedNets, 48, 0xBEEF);
  const auto result = sched.run(workload);
  ASSERT_EQ(result.completions.size(), workload.jobs.size());
  EXPECT_GT(result.batched_execs, 0u) << "workload never coalesced a batch";

  rrm::Engine engine;  // same default seed as the cluster
  for (const auto& job : workload.jobs) {
    const auto& c = result.completions[job.id];
    ASSERT_EQ(c.id, job.id);
    rrm::Request req;
    req.network = job.network;
    req.level = OptLevel::kOutputTiling;
    req.input = job.input;
    const auto resp = engine.run(req);
    ASSERT_TRUE(resp.ok()) << job.network;
    EXPECT_EQ(c.outputs, resp.outputs)
        << job.network << " request " << job.id << " (group " << c.group << ")";
  }
}

TEST(ServeScheduler, LatencyAccountingIdentityHolds) {
  serve::Cluster cluster(cluster_config(3, 4), kMixedNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto result = sched.run(small_workload(cluster, kMixedNets, 40, 0xCAFE));
  for (const auto& c : result.completions) {
    EXPECT_EQ(c.done - c.arrival, c.wait_cycles + c.exec_cycles) << "request " << c.id;
    EXPECT_GE(c.start, c.arrival);
    EXPECT_EQ(c.done, c.start + c.exec_cycles);
    EXPECT_LE(c.done, result.makespan);
    EXPECT_GT(c.exec_cycles, 0u);
  }
}

TEST(ServeScheduler, FifoAndBatchedAgreeOnResults) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  const auto workload = small_workload(cluster, kFcNets, 32, 0xF00D);
  serve::Scheduler fifo(&cluster, serve::Policy::kFifo);
  serve::Scheduler batched(&cluster, serve::Policy::kBatched);
  const auto rf = fifo.run(workload);
  const auto rb = batched.run(workload);
  ASSERT_EQ(rf.completions.size(), rb.completions.size());
  for (size_t i = 0; i < rf.completions.size(); ++i) {
    EXPECT_EQ(rf.completions[i].outputs, rb.completions[i].outputs) << i;
  }
  EXPECT_EQ(rf.batched_execs, 0u);
}

// While weight loads are explicit instructions (level c), coalescing B
// requests amortizes them and shortens the makespan. At level e the fused
// SPR stream already removed those loads, so batched execution must cost
// the same as sequential — never more (see fc_batch.h).
TEST(ServeScheduler, BatchingBeatsFifoOnSaturatedLevelCLoad) {
  const auto nets = std::vector<std::string>{"nasir18"};
  auto cfg = cluster_config(1, 4);
  cfg.level = OptLevel::kOutputTiling;
  serve::Cluster cluster(cfg, nets);
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 24;
  wc.mean_interarrival_cycles = 100;  // all queued almost immediately
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::Scheduler fifo(&cluster, serve::Policy::kFifo);
  serve::Scheduler batched(&cluster, serve::Policy::kBatched);
  const auto rf = fifo.run(workload);
  const auto rb = batched.run(workload);
  EXPECT_LT(rb.makespan, rf.makespan) << "batching should shorten the makespan";
  EXPECT_GT(rb.batch_occupancy(), 0.5);
}

TEST(ServeScheduler, BatchingIsFreeAtLevelE) {
  const auto nets = std::vector<std::string>{"nasir18"};
  serve::Cluster cluster(cluster_config(1, 4), nets);
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 24;
  wc.mean_interarrival_cycles = 100;
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::Scheduler fifo(&cluster, serve::Policy::kFifo);
  serve::Scheduler batched(&cluster, serve::Policy::kBatched);
  const auto rf = fifo.run(workload);
  const auto rb = batched.run(workload);
  // Full groups cost exactly B sequential lanes; only zero-padded slots of
  // partial groups can add time (each pays one lane of the fixed-B
  // program). Bound the regression by that padding.
  ASSERT_GT(rf.makespan, 0u);
  const uint64_t per_lane = rf.makespan / 24;  // ~ one single-request cost
  EXPECT_LE(rb.makespan, rf.makespan + rb.padded_slots * (per_lane + per_lane / 10))
      << "fused per-lane schedule regressed beyond its padding";
  EXPECT_GT(rb.batched_execs, 0u);
}

TEST(ServeCluster, ObserveAggregatesRegionCycles) {
  auto cfg = cluster_config(1, 4);
  cfg.observe = true;
  serve::Cluster cluster(cfg, kFcNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto result = sched.run(small_workload(cluster, kFcNets, 10, 0x0B5));
  uint64_t total_busy = 0;
  for (const auto& c : result.core_busy) total_busy += c;
  uint64_t region_total = 0;
  for (const auto& [name, cycles] : cluster.region_cycles()) region_total += cycles;
  // Every executed cycle lands in some region bucket (or "unattributed").
  EXPECT_EQ(region_total, total_busy);
}
