// Serving subsystem contracts (src/serve):
//   - the shared weight segment is read-only from every core (stores trap),
//   - scheduling is deterministic (same seed => byte-identical JSON),
//   - batched execution is bit-exact per request vs an rrm::Engine single
//     run,
//   - the latency accounting identity holds for every completion.
#include <gtest/gtest.h>

#include "src/asm/builder.h"
#include "src/rrm/engine.h"
#include "src/serve/cluster.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

const std::vector<std::string> kFcNets = {"ahmed19", "eisen19", "nasir18"};
const std::vector<std::string> kMixedNets = {"ahmed19", "naparstek17", "eisen19"};

serve::ClusterConfig cluster_config(int cores, int batch) {
  serve::ClusterConfig cfg;
  cfg.cores = cores;
  cfg.batch = batch;
  cfg.level = OptLevel::kInputTiling;
  return cfg;
}

serve::Workload small_workload(const serve::Cluster& cluster,
                               const std::vector<std::string>& nets, int requests,
                               uint64_t seed) {
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = requests;
  wc.mean_interarrival_cycles = 3000;  // saturating for these nets
  wc.seed = seed;
  return serve::make_poisson_workload(cluster, wc);
}

}  // namespace

TEST(ServeCluster, SharedWeightSegmentIsReadOnlyFromEveryCore) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  for (int core = 0; core < cluster.cores(); ++core) {
    cluster.bind(core, "ahmed19", /*batched=*/false);
    const uint32_t w = cluster.param_base("ahmed19");
    ASSERT_NE(w, 0u);
    // Host-side stores go through the same resolver the core uses.
    try {
      cluster.memory(core).store16(w, 0x7FFF);
      FAIL() << "store into the shared weight segment did not trap";
    } catch (const iss::TrapException& e) {
      EXPECT_EQ(e.cause(), iss::TrapCause::kMemWriteProtected);
    }
    // Loads from the same address are fine.
    (void)cluster.memory(core).load16(w);
  }
}

TEST(ServeCluster, StoreToWeightsFromRunningProgramTraps) {
  serve::Cluster cluster(cluster_config(1, 1), kFcNets);
  cluster.bind(0, "ahmed19", false);
  const uint32_t w = cluster.param_base("ahmed19");
  const uint32_t bytes = cluster.param_bytes("ahmed19");
  ASSERT_GT(bytes, 0u);
  // Hand-written program: sh x0 -> weight segment. The bound image maps
  // text read-only too, so unmap everything and remap only the weights —
  // the hand program then loads into private flat storage.
  cluster.memory(0).unmap_segments();
  cluster.memory(0).map_segment(
      w, std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(bytes)),
      /*read_only=*/true);
  assembler::ProgramBuilder b(kernels::kTextBase);
  assembler::RegPool pool;
  const auto rA = pool.alloc();
  b.li(rA, static_cast<int32_t>(w));
  b.sh(isa::kZero, 0, rA);
  b.ebreak();
  const auto prog = b.build();
  iss::Core& core = cluster.core(0);
  core.load_program(prog);
  core.reset(prog.base);
  const auto res = core.run();
  EXPECT_EQ(res.exit, iss::RunResult::Exit::kTrap);
  EXPECT_EQ(res.trap.cause, iss::TrapCause::kMemWriteProtected);
  EXPECT_EQ(res.trap.addr, w);
}

TEST(ServeScheduler, SameSeedGivesByteIdenticalJson) {
  auto run_once = [] {
    serve::Cluster cluster(cluster_config(4, 4), kFcNets);
    serve::Scheduler sched(&cluster, serve::Policy::kBatched);
    const auto workload = small_workload(cluster, kFcNets, 40, 0x5EED);
    return serve_result_to_json(sched.run(workload), 500.0).dump_pretty();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ServeScheduler, DifferentSeedChangesTheWorkload) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto a = serve_result_to_json(
      sched.run(small_workload(cluster, kFcNets, 30, 1)), 500.0);
  const auto b = serve_result_to_json(
      sched.run(small_workload(cluster, kFcNets, 30, 2)), 500.0);
  EXPECT_NE(a.dump_pretty(), b.dump_pretty());
}

TEST(ServeScheduler, BatchedOutputsBitExactVsEngineSingleRun) {
  // Level c: the 2-D tiled batched program is a genuinely different
  // schedule from the single-sample one, so bit-exactness is non-trivial
  // there (at d/e the batched program is the fused per-sample loop and
  // partial groups are not coalesced at all — see scheduler.cpp).
  auto cfg = cluster_config(2, 4);
  cfg.level = OptLevel::kOutputTiling;
  serve::Cluster cluster(cfg, kMixedNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto workload = small_workload(cluster, kMixedNets, 48, 0xBEEF);
  const auto result = sched.run(workload);
  ASSERT_EQ(result.completions.size(), workload.jobs.size());
  EXPECT_GT(result.batched_execs, 0u) << "workload never coalesced a batch";

  rrm::Engine engine;  // same default seed as the cluster
  for (const auto& job : workload.jobs) {
    const auto& c = result.completions[job.id];
    ASSERT_EQ(c.id, job.id);
    rrm::Request req;
    req.network = job.network;
    req.level = OptLevel::kOutputTiling;
    req.input = job.input;
    const auto resp = engine.run(req);
    ASSERT_TRUE(resp.ok()) << job.network;
    EXPECT_EQ(c.outputs, resp.outputs)
        << job.network << " request " << job.id << " (group " << c.group << ")";
  }
}

TEST(ServeScheduler, LatencyAccountingIdentityHolds) {
  serve::Cluster cluster(cluster_config(3, 4), kMixedNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto result = sched.run(small_workload(cluster, kMixedNets, 40, 0xCAFE));
  for (const auto& c : result.completions) {
    EXPECT_EQ(c.done - c.arrival, c.wait_cycles + c.exec_cycles) << "request " << c.id;
    EXPECT_GE(c.start, c.arrival);
    EXPECT_EQ(c.done, c.start + c.exec_cycles);
    EXPECT_LE(c.done, result.makespan);
    EXPECT_GT(c.exec_cycles, 0u);
  }
}

TEST(ServeScheduler, FifoAndBatchedAgreeOnResults) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  const auto workload = small_workload(cluster, kFcNets, 32, 0xF00D);
  serve::Scheduler fifo(&cluster, serve::Policy::kFifo);
  serve::Scheduler batched(&cluster, serve::Policy::kBatched);
  const auto rf = fifo.run(workload);
  const auto rb = batched.run(workload);
  ASSERT_EQ(rf.completions.size(), rb.completions.size());
  for (size_t i = 0; i < rf.completions.size(); ++i) {
    EXPECT_EQ(rf.completions[i].outputs, rb.completions[i].outputs) << i;
  }
  EXPECT_EQ(rf.batched_execs, 0u);
}

// While weight loads are explicit instructions (level c), coalescing B
// requests amortizes them and shortens the makespan. At level e the fused
// SPR stream already removed those loads, so batched execution must cost
// the same as sequential — never more (see fc_batch.h).
TEST(ServeScheduler, BatchingBeatsFifoOnSaturatedLevelCLoad) {
  const auto nets = std::vector<std::string>{"nasir18"};
  auto cfg = cluster_config(1, 4);
  cfg.level = OptLevel::kOutputTiling;
  serve::Cluster cluster(cfg, nets);
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 24;
  wc.mean_interarrival_cycles = 100;  // all queued almost immediately
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::Scheduler fifo(&cluster, serve::Policy::kFifo);
  serve::Scheduler batched(&cluster, serve::Policy::kBatched);
  const auto rf = fifo.run(workload);
  const auto rb = batched.run(workload);
  EXPECT_LT(rb.makespan, rf.makespan) << "batching should shorten the makespan";
  EXPECT_GT(rb.batch_occupancy(), 0.5);
}

TEST(ServeScheduler, BatchingIsFreeAtLevelE) {
  const auto nets = std::vector<std::string>{"nasir18"};
  serve::Cluster cluster(cluster_config(1, 4), nets);
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 24;
  wc.mean_interarrival_cycles = 100;
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::Scheduler fifo(&cluster, serve::Policy::kFifo);
  serve::Scheduler batched(&cluster, serve::Policy::kBatched);
  const auto rf = fifo.run(workload);
  const auto rb = batched.run(workload);
  // Full groups cost exactly B sequential lanes; only zero-padded slots of
  // partial groups can add time (each pays one lane of the fixed-B
  // program). Bound the regression by that padding.
  ASSERT_GT(rf.makespan, 0u);
  const uint64_t per_lane = rf.makespan / 24;  // ~ one single-request cost
  EXPECT_LE(rb.makespan, rf.makespan + rb.padded_slots * (per_lane + per_lane / 10))
      << "fused per-lane schedule regressed beyond its padding";
  EXPECT_GT(rb.batched_execs, 0u);
}

// ---------------------------------------------------------------------------
// Resilience: deadlines, admission control, faults, retries, quarantine,
// level fallback (PR 5).
// ---------------------------------------------------------------------------

TEST(ServeScheduler, EmptyWorkloadIsServedTrivially) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = 0;
  const auto workload = serve::make_poisson_workload(cluster, wc);
  EXPECT_TRUE(workload.jobs.empty());
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto r = sched.run(workload);
  EXPECT_TRUE(r.completions.empty());
  EXPECT_EQ(r.makespan, 0u);
  EXPECT_EQ(r.latency_percentile(99), 0u);
  EXPECT_EQ(r.throughput_per_s(500.0), 0.0);
  EXPECT_EQ(r.goodput_per_s(500.0), 0.0);
  // The JSON report of an empty run is still well-formed.
  EXPECT_FALSE(serve_result_to_json(r, 500.0).dump_pretty().empty());
}

TEST(ServeScheduler, DeadlineSlackOnlyAppendsToTheRngStream) {
  serve::Cluster cluster(cluster_config(1, 1), kFcNets);
  serve::WorkloadConfig base;
  base.networks = kFcNets;
  base.requests = 24;
  base.seed = 0xD15C;
  auto with = base;
  with.deadline_slack_cycles = 250'000;
  const auto a = serve::make_poisson_workload(cluster, base);
  const auto b = serve::make_poisson_workload(cluster, with);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    // Identical stream except for the deadline: a slack of 0 is the PR 3
    // workload bit-for-bit.
    EXPECT_EQ(a.jobs[i].network, b.jobs[i].network);
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].input, b.jobs[i].input);
    EXPECT_EQ(a.jobs[i].deadline, 0u);
    EXPECT_GT(b.jobs[i].deadline, b.jobs[i].arrival);
  }
}

TEST(ServeScheduler, DefaultConfigMatchesPlainPolicyCtorByteForByte) {
  const auto run = [](bool via_config) {
    serve::Cluster cluster(cluster_config(2, 4), kFcNets);
    const auto workload = small_workload(cluster, kFcNets, 32, 0x1DE7);
    if (via_config) {
      serve::SchedulerConfig sc;
      sc.policy = serve::Policy::kBatched;
      serve::Scheduler sched(&cluster, sc);
      return serve_result_to_json(sched.run(workload), 500.0).dump_pretty();
    }
    serve::Scheduler sched(&cluster, serve::Policy::kBatched);
    return serve_result_to_json(sched.run(workload), 500.0).dump_pretty();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ServeScheduler, HopelessDeadlinesAreRejectedNotSilentlyDropped) {
  serve::Cluster cluster(cluster_config(2, 1), kFcNets);
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = 16;
  wc.mean_interarrival_cycles = 3000;
  // Slack of a few cycles: no network finishes that fast, so admission
  // control must reject every request up front.
  wc.deadline_slack_cycles = 4;
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::SchedulerConfig sc;
  sc.policy = serve::Policy::kDeadline;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);
  EXPECT_TRUE(r.completions.empty());
  EXPECT_EQ(r.rejections.size(), workload.jobs.size());
  EXPECT_EQ(r.admitted(), 0u);
  EXPECT_EQ(r.makespan, 0u);  // nothing ever executed
  for (const auto& rej : r.rejections) EXPECT_GT(rej.deadline, 0u);
}

TEST(ServeScheduler, GenerousDeadlinesAreAllMetUnderEdf) {
  serve::Cluster cluster(cluster_config(4, 1), kFcNets);
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = 32;
  wc.mean_interarrival_cycles = 20'000;
  wc.deadline_slack_cycles = 50'000'000;  // effectively unbounded
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::SchedulerConfig sc;
  sc.policy = serve::Policy::kDeadline;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);
  EXPECT_EQ(r.completions.size(), workload.jobs.size());
  EXPECT_TRUE(r.rejections.empty());
  EXPECT_EQ(r.deadline_misses, 0u);
  for (const auto& c : r.completions) EXPECT_TRUE(c.met_deadline());
  EXPECT_GT(r.goodput_per_s(500.0), 0.0);
}

TEST(ServeScheduler, ProvableAdmissionNeverAdmitsADeadlineMiss) {
  // kProvable charges the certified WCET at dispatch time: an admitted
  // request satisfies start + WCET <= deadline, and since the measured run
  // never exceeds the WCET, every admitted request provably completes in
  // time. Saturating arrivals force late starts, so rejections do occur.
  serve::Cluster cluster(cluster_config(2, 1), kFcNets);
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = 24;
  wc.mean_interarrival_cycles = 3000;
  // Slack between the small FC nets' WCET (~1k cycles) and nasir18's
  // (~21k): admission must pass the former and provably reject the latter.
  wc.deadline_slack_cycles = 5'000;
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::SchedulerConfig sc;
  sc.policy = serve::Policy::kDeadline;
  sc.admission = serve::Admission::kProvable;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);
  EXPECT_GT(r.admitted(), 0u);            // the gate is not vacuous
  EXPECT_FALSE(r.rejections.empty());     // saturation does reject
  EXPECT_EQ(r.deadline_misses, 0u);
  for (const auto& c : r.completions) EXPECT_TRUE(c.met_deadline());
}

TEST(ServeScheduler, SingletonGroupsAtFusedLevelsSkipTheBatchedProgram) {
  // 5 same-network requests, batch capacity 4, level e: one full group runs
  // batched, the leftover singleton must run the single program (the fused
  // batched schedule gains nothing and padding costs a full lane).
  const auto nets = std::vector<std::string>{"nasir18"};
  serve::Cluster cluster(cluster_config(1, 4), nets);
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 5;
  wc.mean_interarrival_cycles = 100;
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto r = sched.run(workload);
  ASSERT_EQ(r.completions.size(), 5u);
  EXPECT_EQ(r.batched_execs, 1u);
  EXPECT_EQ(r.batched_requests, 4u);
  EXPECT_EQ(r.padded_slots, 0u);  // never a padded lane at level >= d
  EXPECT_EQ(r.single_execs, 1u);
  int singles = 0;
  for (const auto& c : r.completions) singles += c.group == 1 ? 1 : 0;
  EXPECT_EQ(singles, 1);
}

TEST(ServeScheduler, WatchdogKilledExecutionsRetryThenFailDeterministically) {
  // A tiny explicit watchdog kills every *faulted* execution, so each
  // request burns through its full retry budget and is recorded as failed;
  // consecutive failures quarantine the core.
  auto cfg = cluster_config(2, 1);
  cfg.watchdog_cycles = 64;  // far below any network's execution time
  const auto run_once = [&cfg] {
    serve::Cluster cluster(cfg, kFcNets);
    const auto workload = small_workload(cluster, kFcNets, 6, 0xFA11);
    serve::SchedulerConfig sc;
    sc.fault.rate_of(fault::Target::kRegFile) = 1e-7;  // armed => watchdog applies
    sc.max_retries = 2;
    sc.quarantine_threshold = 3;
    sc.quarantine_cooldown_cycles = 10'000;
    serve::Scheduler sched(&cluster, sc);
    return sched.run(workload);
  };
  const auto r = run_once();
  EXPECT_TRUE(r.completions.empty());
  EXPECT_EQ(r.failed.size(), 6u);
  EXPECT_EQ(r.exec_failures, 6u * 3u);  // 1 try + 2 retries each
  EXPECT_EQ(r.retries, 6u * 2u);
  EXPECT_FALSE(r.quarantines.empty());
  EXPECT_GT(r.quarantine_cycles, 0u);
  for (const auto& f : r.failed) {
    EXPECT_EQ(f.attempts, 3);
    EXPECT_EQ(f.last_cause, iss::TrapCause::kWatchdog);
  }
  for (const auto& q : r.quarantines) EXPECT_EQ(q.to - q.from, 10'000u);
  // Bit-reproducible: the whole campaign replays from the one seed.
  const auto r2 = run_once();
  EXPECT_EQ(serve_result_to_json(r, 500.0).dump_pretty(),
            serve_result_to_json(r2, 500.0).dump_pretty());
}

TEST(ServeScheduler, FaultEventsAreAttributedToCoreAndRequest) {
  serve::Cluster cluster(cluster_config(2, 1), kFcNets);
  const auto workload = small_workload(cluster, kFcNets, 12, 0x5EED);
  serve::SchedulerConfig sc;
  // Dense enough to observe flips, sparse enough that programs still
  // finish: TCDM flips land in private activation buffers only.
  sc.fault.rate_of(fault::Target::kTcdm) = 2e-4;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);
  EXPECT_FALSE(r.fault_log.empty()) << "campaign injected nothing";
  for (const auto& fa : r.fault_log) {
    EXPECT_GE(fa.core, 0);
    EXPECT_LT(fa.core, 2);
    EXPECT_LT(fa.request, workload.jobs.size());
    EXPECT_EQ(fa.event.target, fault::Target::kTcdm);
  }
  // Every request was still served (TCDM data flips corrupt values, not
  // control flow) and the accounting identity held throughout.
  EXPECT_EQ(r.completions.size() + r.failed.size(), workload.jobs.size());
}

TEST(ServeScheduler, AccountingIdentityHoldsForRetriedRequests) {
  auto cfg = cluster_config(2, 1);
  cfg.watchdog_cycles = 64;
  serve::Cluster cluster(cfg, kFcNets);
  const auto workload = small_workload(cluster, kFcNets, 8, 0xAC);
  serve::SchedulerConfig sc;
  // Rate chosen so the injector arms (watchdog kills every attempt)... but
  // give a huge retry budget and a one-shot quarantine so the run still
  // terminates with all requests failed; identity is then vacuous — so
  // instead leave faults off for half the picture: run fault-free under the
  // resilience config and assert the identity for every completion.
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);
  ASSERT_EQ(r.completions.size(), workload.jobs.size());
  for (const auto& c : r.completions) {
    EXPECT_EQ(c.done - c.arrival, c.wait_cycles + c.exec_cycles) << "request " << c.id;
    EXPECT_EQ(c.retries, 0);
  }
  // Now with faults: retried requests keep the identity (backoff is wait).
  serve::SchedulerConfig sf;
  sf.fault.rate_of(fault::Target::kTcdm) = 5e-5;
  serve::Cluster cluster2(cluster_config(2, 1), kFcNets);
  serve::Scheduler sched2(&cluster2, sf);
  const auto r2 = sched2.run(small_workload(cluster2, kFcNets, 12, 0xAC2));
  for (const auto& c : r2.completions) {
    EXPECT_EQ(c.done - c.arrival, c.wait_cycles + c.exec_cycles) << "request " << c.id;
    EXPECT_EQ(c.done, c.start + c.exec_cycles);
    EXPECT_GE(c.start, c.arrival);
  }
}

TEST(ServeScheduler, OverloadFallsBackToCheaperLevelAndRecovers) {
  // Primary level c with a level-e fallback: e is the cheaper (faster)
  // flavor. A deep queue trips the overload trigger, dispatch degrades to
  // e, and the run records the degraded interval and per-level mix.
  auto cfg = cluster_config(1, 1);
  cfg.level = OptLevel::kOutputTiling;
  cfg.fallback_level = OptLevel::kInputTiling;
  serve::Cluster cluster(cfg, kFcNets);
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = 24;
  wc.mean_interarrival_cycles = 200;  // everything arrives almost at once
  const auto workload = serve::make_poisson_workload(cluster, wc);
  serve::SchedulerConfig sc;
  sc.level_fallback = true;
  sc.overload_queue_depth = 4;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);
  ASSERT_EQ(r.completions.size(), workload.jobs.size());
  EXPECT_GT(r.fallback_execs, 0u);
  EXPECT_FALSE(r.fallback_intervals.empty());
  bool saw_c = false, saw_e = false;
  for (const auto& c : r.completions) {
    saw_c |= c.level == OptLevel::kOutputTiling;
    saw_e |= c.level == OptLevel::kInputTiling;
  }
  EXPECT_TRUE(saw_e) << "no request was served at the fallback level";
  // All levels compute bit-identical results: outputs must match the
  // engine regardless of the level each request was served at.
  rrm::Engine engine;
  for (const auto& job : workload.jobs) {
    rrm::Request req;
    req.network = job.network;
    req.level = OptLevel::kInputTiling;
    req.input = job.input;
    const auto resp = engine.run(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(r.completions[job.id].outputs, resp.outputs) << job.id;
  }
  (void)saw_c;
}

TEST(ServeScheduler, QuarantineReentryRequiresFreshFailureThreshold) {
  // Cooldown re-entry audit: entering quarantine resets the core's
  // consecutive-failure counter, so after the cooldown expires the core
  // must burn a *full fresh threshold* of failed attempts before it can
  // re-enter — a single lingering failure may not re-quarantine it.
  auto cfg = cluster_config(1, 1);
  cfg.watchdog_cycles = 64;  // kills every faulted execution
  serve::Cluster cluster(cfg, kFcNets);
  const auto workload = small_workload(cluster, kFcNets, 6, 0xC0DE);
  serve::SchedulerConfig sc;
  sc.fault.rate_of(fault::Target::kRegFile) = 1e-7;  // armed => watchdog applies
  sc.max_retries = 2;
  sc.quarantine_threshold = 3;
  sc.quarantine_cooldown_cycles = 50'000;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(workload);

  // Every attempt of every request is watchdog-killed: 6 requests x
  // (1 try + 2 retries) = 18 consecutive failures on the single core.
  EXPECT_EQ(r.exec_failures, 18u);
  // Exactly one quarantine per full threshold of failures. Without the
  // reset-on-entry, every failure after the first quarantine would
  // immediately re-quarantine the core (16 windows instead of 6).
  ASSERT_EQ(r.quarantines.size(), 18u / 3u);
  EXPECT_EQ(r.quarantine_cycles, 6u * 50'000u);
  for (size_t i = 0; i < r.quarantines.size(); ++i) {
    const auto& q = r.quarantines[i];
    EXPECT_EQ(q.core, 0);
    EXPECT_EQ(q.to - q.from, 50'000u);
    if (i == 0) continue;
    const auto& prev = r.quarantines[i - 1];
    // Disjoint, ordered, and separated by at least a fresh threshold of
    // failed work (each killed attempt costs >= the watchdog budget).
    EXPECT_GE(q.from, prev.to + 3u * 64u)
        << "quarantine " << i << " re-entered without a fresh threshold";
  }
}

TEST(ServeScheduler, FallbackRecoveryRestoresPrimaryLevelBitExactly) {
  // Overload-fallback recovery: once the queue drains and the degraded
  // interval closes, dispatch returns to the primary level, and the
  // post-recovery completions are bit-identical — outputs and timing —
  // to a run that never degraded at all.
  auto cfg = cluster_config(1, 1);
  cfg.level = OptLevel::kOutputTiling;
  cfg.fallback_level = OptLevel::kInputTiling;
  serve::Cluster cluster(cfg, kFcNets);
  const uint64_t est = cluster.estimated_single_cycles("ahmed19");

  // 12-request burst at cycle 0 trips the depth trigger; a long gap lets
  // the queue drain and the overload exit; 6 widely spaced tail requests
  // then exercise the recovered scheduler.
  serve::WorkloadConfig wc;
  wc.networks = {"ahmed19"};
  wc.requests = 18;
  wc.seed = 0xFA11B;
  auto workload = serve::make_poisson_workload(cluster, wc);
  for (size_t i = 0; i < workload.jobs.size(); ++i) {
    workload.jobs[i].arrival = i < 12 ? 0 : (40 + 10 * (i - 12)) * est;
  }

  serve::SchedulerConfig sc;
  sc.level_fallback = true;
  sc.overload_queue_depth = 4;
  serve::Scheduler degraded_sched(&cluster, sc);
  const auto r = degraded_sched.run(workload);
  ASSERT_EQ(r.completions.size(), workload.jobs.size());
  ASSERT_FALSE(r.fallback_intervals.empty());
  const auto& last = r.fallback_intervals.back();
  EXPECT_LT(last.to, 40 * est) << "overload did not exit before the tail";

  // The never-degraded control: same cluster shape, fallback disabled.
  serve::Cluster control_cluster(cfg, kFcNets);
  serve::Scheduler control_sched(&control_cluster, serve::SchedulerConfig{});
  const auto rn = control_sched.run(workload);
  ASSERT_EQ(rn.completions.size(), workload.jobs.size());

  // Every completion dispatched after the interval closed is back at the
  // primary level (burst stragglers included — their *schedule* still
  // carries the fallback speedup, so only the level is compared here).
  for (const auto& c : r.completions) {
    if (c.start < last.to) continue;
    EXPECT_EQ(c.level, OptLevel::kOutputTiling) << "request " << c.id;
  }
  // The idle gap re-converges the two schedules: each tail request starts
  // at its arrival on an idle core in both runs, so post-recovery service
  // is bit-identical to the never-degraded run — outputs and timing.
  for (uint64_t id = 12; id < 18; ++id) {
    const auto& c = r.completions[id];
    const auto& n = rn.completions[id];
    EXPECT_GE(c.start, last.to) << "request " << id;
    EXPECT_EQ(c.level, OptLevel::kOutputTiling) << "request " << id;
    EXPECT_EQ(c.outputs, n.outputs) << "request " << id;
    EXPECT_EQ(c.start, n.start) << "request " << id;
    EXPECT_EQ(c.done, n.done) << "request " << id;
    EXPECT_EQ(c.exec_cycles, n.exec_cycles) << "request " << id;
  }
}

TEST(ServeCluster, ObserveAggregatesRegionCycles) {
  auto cfg = cluster_config(1, 4);
  cfg.observe = true;
  serve::Cluster cluster(cfg, kFcNets);
  serve::Scheduler sched(&cluster, serve::Policy::kBatched);
  const auto result = sched.run(small_workload(cluster, kFcNets, 10, 0x0B5));
  uint64_t total_busy = 0;
  for (const auto& c : result.core_busy) total_busy += c;
  uint64_t region_total = 0;
  for (const auto& [name, cycles] : cluster.region_cycles()) region_total += cycles;
  // Every executed cycle lands in some region bucket (or "unattributed").
  EXPECT_EQ(region_total, total_busy);
}
