// Tests for the table renderer used by the benchmark harness.
#include <gtest/gtest.h>

#include "src/common/table.h"

namespace rnnasip {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "cycles"});
  t.add_row({"lw!", "2432"});
  t.add_row({"pv.sdot", "811"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("pv.sdot"), std::string::npos);
  // Numeric column is right-aligned: "2432" ends at the same offset as "811".
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, MarkdownOutput) {
  Table t({"name", "cycles"});
  t.add_row({"a|b", "12"});
  EXPECT_EQ(t.to_markdown(),
            "| name | cycles |\n"
            "| :--- | ---: |\n"
            "| a\\|b | 12 |\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Format, Count) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1'000");
  EXPECT_EQ(fmt_count(14683), "14'683");
  EXPECT_EQ(fmt_count(1234567890), "1'234'567'890");
}

TEST(Format, Double) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(15.0, 1), "15.0");
}

}  // namespace
}  // namespace rnnasip
