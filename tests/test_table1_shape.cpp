// Regression guard for the paper's Table I histogram shapes: the per-level
// instruction-mix ratios that define each optimization are pinned so a
// kernel-generator change that silently alters a schedule fails here.
#include <gtest/gtest.h>

#include "src/rrm/engine.h"

namespace rnnasip::rrm {
namespace {

using kernels::OptLevel;

double kcyc(const SuiteResult& s, const char* group) {
  const auto g = s.total.by_display_group();
  const auto it = g.find(group);
  return it == g.end() ? 0.0 : static_cast<double>(it->second.cycles);
}

double kinstr(const SuiteResult& s, const char* group) {
  const auto g = s.total.by_display_group();
  const auto it = g.find(group);
  return it == g.end() ? 0.0 : static_cast<double>(it->second.instrs);
}

class TableOneShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Engine eng;
    Request proto;
    proto.verify = false;
    for (auto level : kernels::kAllOptLevels) {
      results_->push_back(eng.run_suite(level, proto));
    }
  }
  static void TearDownTestSuite() { results_->clear(); }
  static const SuiteResult& at(OptLevel l) {
    return (*results_)[static_cast<size_t>(l)];
  }
  static std::vector<SuiteResult>* results_;
};

std::vector<SuiteResult>* TableOneShape::results_ = new std::vector<SuiteResult>();

TEST_F(TableOneShape, BaselineColumnRatios) {
  // Table Ia: per MAC — 2 lh, 1 lw, 1 sw, 2 addi, 1 bltu(2cyc), 1 mac.
  const auto& a = at(OptLevel::kBaseline);
  const double macs = kinstr(a, "mac");
  EXPECT_GT(macs, 100'000);
  EXPECT_NEAR(kinstr(a, "lh") / macs, 2.0, 0.1);
  EXPECT_NEAR(kinstr(a, "lw") / macs, 1.0, 0.1);
  EXPECT_NEAR(kinstr(a, "sw") / macs, 1.0, 0.1);
  EXPECT_NEAR(kinstr(a, "addi") / macs, 2.0, 0.35);
  // Taken branches dominate: ~2 cycles per bltu.
  EXPECT_NEAR(kcyc(a, "bltu") / kinstr(a, "bltu"), 2.0, 0.1);
  // ~9 cycles per MAC overall.
  EXPECT_NEAR(static_cast<double>(a.total_cycles) / macs, 9.0, 0.8);
}

TEST_F(TableOneShape, LevelBLoadStallRatio) {
  // Table Ib: lw! at 1.5 cycles/instruction (every pair's second load
  // stalls into the sdot).
  const auto& b = at(OptLevel::kXpulpSimd);
  EXPECT_NEAR(kcyc(b, "lw!") / kinstr(b, "lw!"), 1.5, 0.06);
  // Two loads per sdot.
  EXPECT_NEAR(kinstr(b, "lw!") / kinstr(b, "pv.sdot"), 2.0, 0.1);
}

TEST_F(TableOneShape, LevelCRemovesStallsAndSharesLoads) {
  // Table Ic: lw! at ~1.0 cycles, and well under 2 loads per sdot.
  const auto& c = at(OptLevel::kOutputTiling);
  EXPECT_NEAR(kcyc(c, "lw!") / kinstr(c, "lw!"), 1.0, 0.05);
  EXPECT_LT(kinstr(c, "lw!") / kinstr(c, "pv.sdot"), 1.45);
  // The HW activations appear (merged tanh,sig group) and are single-cycle.
  EXPECT_GT(kinstr(c, "tanh,sig"), 0);
  EXPECT_EQ(kcyc(c, "tanh,sig"), kinstr(c, "tanh,sig"));
}

TEST_F(TableOneShape, LevelDFoldsWeightLoads) {
  // Table Id: pl.sdot carries the MACs; the explicit loads that remain are
  // the x stream at ~2 cycles each (the Table II bubble).
  const auto& d = at(OptLevel::kLoadCompute);
  EXPECT_GT(kinstr(d, "pl.sdot"), 100'000);
  EXPECT_LT(kinstr(d, "lw!"), 0.25 * kinstr(d, "pl.sdot"));
  EXPECT_NEAR(kcyc(d, "lw!") / kinstr(d, "lw!"), 2.0, 0.25);
}

TEST_F(TableOneShape, LevelERemovesTheBubble) {
  // Table Ie: lw! back to ~1 cycle/instruction; pl.sdot >= 75% of cycles.
  const auto& e = at(OptLevel::kInputTiling);
  EXPECT_NEAR(kcyc(e, "lw!") / kinstr(e, "lw!"), 1.0, 0.35);
  EXPECT_GT(kcyc(e, "pl.sdot") / static_cast<double>(e.total_cycles), 0.75);
}

TEST_F(TableOneShape, CumulativeSpeedupLadder) {
  const double base = static_cast<double>(at(OptLevel::kBaseline).total_cycles);
  EXPECT_NEAR(base / at(OptLevel::kXpulpSimd).total_cycles, 4.45, 0.6);
  EXPECT_NEAR(base / at(OptLevel::kOutputTiling).total_cycles, 8.2, 1.0);
  EXPECT_NEAR(base / at(OptLevel::kLoadCompute).total_cycles, 13.6, 1.5);
  EXPECT_NEAR(base / at(OptLevel::kInputTiling).total_cycles, 15.0, 1.5);
}

}  // namespace
}  // namespace rnnasip::rrm
