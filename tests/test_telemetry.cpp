// Serving-telemetry contracts (src/obs metrics + span layers and their
// src/serve wiring):
//   - the span identity (done - arrival tiles exactly into wait + exec +
//     retry + rollback + preempted) holds for every request under FIFO,
//     batched and EDF scheduling, and on the segmented integrity path with
//     rollbacks and preemption in play;
//   - histogram bucket boundaries are exact at the documented edges and
//     histogram quantiles land in the bucket of the exact nearest-rank
//     sample;
//   - the serving Perfetto export is well-formed trace-event JSON;
//   - the telemetry JSON block is byte-deterministic and absent when
//     telemetry is off;
//   - collapsed-stack flamegraph lines sum to the observed cycle totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_export.h"
#include "src/rrm/engine.h"
#include "src/serve/cluster.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

const std::vector<std::string> kFcNets = {"ahmed19", "eisen19", "nasir18"};

serve::ClusterConfig cluster_config(int cores, int batch, bool integrity = false) {
  serve::ClusterConfig cfg;
  cfg.cores = cores;
  cfg.batch = batch;
  cfg.level = OptLevel::kInputTiling;
  cfg.integrity = integrity;
  return cfg;
}

serve::Workload small_workload(const serve::Cluster& cluster, int requests,
                               uint64_t seed, double interarrival = 3000) {
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = requests;
  wc.mean_interarrival_cycles = interarrival;
  wc.seed = seed;
  return serve::make_poisson_workload(cluster, wc);
}

serve::SchedulerConfig telemetered(serve::Policy policy) {
  serve::SchedulerConfig sc;
  sc.policy = policy;
  sc.telemetry.enabled = true;
  return sc;
}

/// Total span cycles the scheduler should have accounted: every closed
/// request contributes exactly (close - arrival).
uint64_t expected_span_cycles(const serve::ServeResult& r) {
  uint64_t total = 0;
  for (const auto& c : r.completions) total += c.done - c.arrival;
  for (const auto& rej : r.rejections) total += rej.decided_at - rej.arrival;
  return total;
}

uint64_t total_phase_cycles(const obs::SpanCollector& spans) {
  uint64_t total = 0;
  for (size_t p = 0; p < obs::kSpanPhaseCount; ++p) {
    total += spans.phase_total(static_cast<obs::SpanPhase>(p));
  }
  return total;
}

}  // namespace

// ------------------------------------------------------------ histogram ----

TEST(Histogram, BucketBoundaryEdges) {
  using H = obs::Histogram;
  // Values 0..7 get exact unit buckets.
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(H::bucket_of(v), v);
    EXPECT_EQ(H::bucket_lower(v), v);
    EXPECT_EQ(H::bucket_upper(v), v + 1);
  }
  // First bucket of every octave starts exactly at the power of two, and
  // the value one below lands in the previous bucket.
  for (int o = 3; o < 63; ++o) {
    const uint64_t p2 = uint64_t{1} << o;
    const size_t b = H::bucket_of(p2);
    EXPECT_EQ(H::bucket_lower(b), p2) << "octave " << o;
    EXPECT_EQ(H::bucket_of(p2 - 1), b - 1) << "octave " << o;
  }
  // Sub-bucket boundaries inside one octave: [2^4, 2^5) splits at stride 2.
  EXPECT_EQ(H::bucket_of(16), H::bucket_of(17));
  EXPECT_NE(H::bucket_of(17), H::bucket_of(18));
  EXPECT_EQ(H::bucket_lower(H::bucket_of(18)), 18u);
  // Every value is inside its bucket's [lower, upper) interval.
  for (uint64_t v : {uint64_t{0}, uint64_t{7}, uint64_t{8}, uint64_t{100},
                     uint64_t{4096}, uint64_t{123456789},
                     (uint64_t{1} << 63) + 17}) {
    const size_t b = H::bucket_of(v);
    ASSERT_LT(b, H::kBucketCount);
    EXPECT_LE(H::bucket_lower(b), v);
    EXPECT_GT(H::bucket_upper(b), v);
  }
  // The top bucket's upper edge saturates at UINT64_MAX instead of
  // wrapping, so the maximum value still lands inside it.
  EXPECT_EQ(H::bucket_of(~uint64_t{0}), H::kBucketCount - 1);
  EXPECT_EQ(H::bucket_upper(H::kBucketCount - 1), ~uint64_t{0});
  EXPECT_LE(H::bucket_lower(H::kBucketCount - 1), ~uint64_t{0});
}

TEST(Histogram, QuantileMatchesExactNearestRankBucket) {
  obs::Histogram h;
  std::vector<uint64_t> exact;
  uint64_t x = 0x5EED;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t v = (x >> 33) % 200'000;  // latency-ish spread
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double p : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(exact.size())));
    if (rank == 0) rank = 1;
    const uint64_t sample = exact[rank - 1];
    // The histogram's quantile bucket is the bucket of the exact sample,
    // so the reported value is within one bucket (<= 12.5% relative).
    EXPECT_EQ(h.quantile_bucket(p),
              static_cast<int>(obs::Histogram::bucket_of(sample)))
        << "p" << p;
    EXPECT_EQ(h.quantile(p),
              obs::Histogram::bucket_lower(obs::Histogram::bucket_of(sample)))
        << "p" << p;
  }
}

TEST(Histogram, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile_bucket(50), -1);
  EXPECT_EQ(h.quantile(50), 0u);
  h.record(42);
  EXPECT_EQ(h.quantile_bucket(50), static_cast<int>(obs::Histogram::bucket_of(42)));
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
}

// -------------------------------------------------------- span identity ----

TEST(SpanIdentity, HoldsForEveryRequestAcrossPolicies) {
  for (const auto policy :
       {serve::Policy::kFifo, serve::Policy::kBatched, serve::Policy::kDeadline}) {
    serve::Cluster cluster(cluster_config(2, 4), kFcNets);
    serve::Scheduler sched(&cluster, telemetered(policy));
    const auto r = sched.run(small_workload(cluster, 24, 0x5EED));
    ASSERT_TRUE(r.telemetry) << serve::policy_name(policy);
    const auto& spans = r.telemetry->spans;
    // Every touched request closed, and close() asserted the identity on
    // each one (identity_checks counts those assertions).
    EXPECT_EQ(spans.spans_opened(), spans.spans_closed());
    EXPECT_EQ(spans.spans_closed(),
              r.completions.size() + r.rejections.size() + r.failed.size());
    EXPECT_EQ(spans.identity_checks(), spans.spans_closed());
    // The per-phase accumulators tile the same wall cycles the scheduler
    // reported per request — no gaps, no double counting (fault-free run:
    // the totals are reconstructible from completions + rejections alone).
    EXPECT_TRUE(r.failed.empty());
    EXPECT_EQ(total_phase_cycles(spans), expected_span_cycles(r))
        << serve::policy_name(policy);
  }
}

TEST(SpanIdentity, SegmentedIntegrityPathWithRollbacks) {
  serve::Cluster cluster(cluster_config(2, 1, /*integrity=*/true), kFcNets);
  auto sc = telemetered(serve::Policy::kFifo);
  sc.fault.seed = 0xF00D;
  sc.fault.rate_of(fault::Target::kTcdm) = 3e-4;  // the PR 5 "high" point
  sc.integrity.detect = true;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(small_workload(cluster, 32, 0x5EED));

  ASSERT_TRUE(r.telemetry);
  ASSERT_GT(r.rollbacks, 0u);  // the campaign must actually exercise rollback
  const auto& spans = r.telemetry->spans;
  EXPECT_EQ(spans.spans_closed(),
            r.completions.size() + r.rejections.size() + r.failed.size());
  EXPECT_EQ(spans.identity_checks(), spans.spans_closed());
  // Rollback replay cycles land in their own phase, matching the
  // scheduler's own accounting exactly.
  EXPECT_EQ(spans.phase_total(obs::SpanPhase::kRollback), r.rollback_cycles);
  // Some request carries a detection mark in its retained timeline.
  bool saw_detection = false;
  for (const auto& t : spans.tracks()) {
    for (const auto& m : t.instants) {
      saw_detection |= m.mark == obs::SpanMark::kDetection;
    }
  }
  EXPECT_TRUE(saw_detection);
}

TEST(SpanIdentity, PreemptedSpanAccountsSuspendedCycles) {
  // Same forced-preemption shape as IntegrityServing: one core, a long
  // deadline-free job, and a challenger with a feasible deadline.
  serve::Cluster cluster(cluster_config(1, 1, /*integrity=*/true),
                         {"ahmed19", "nasir18"});
  serve::Workload w;
  serve::Job j0;
  j0.id = 0;
  j0.network = "nasir18";
  j0.arrival = 0;
  j0.input = cluster.network("nasir18").make_input(0);
  serve::Job j1;
  j1.id = 1;
  j1.network = "ahmed19";
  j1.arrival = 1;
  j1.deadline = 500'000;
  j1.input = cluster.network("ahmed19").make_input(1);
  w.jobs = {std::move(j0), std::move(j1)};

  auto sc = telemetered(serve::Policy::kDeadline);
  sc.integrity.detect = true;
  sc.integrity.preemption = true;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(w);

  ASSERT_TRUE(r.telemetry);
  ASSERT_GE(r.preemptions, 1u);
  const auto& spans = r.telemetry->spans;
  EXPECT_EQ(spans.spans_closed(), 2u);
  // Suspension gaps are first-class span phases and reconcile with the
  // scheduler's preempted-cycle counter.
  EXPECT_EQ(spans.phase_total(obs::SpanPhase::kPreempted), r.preempted_cycles);
  bool saw_preempt = false, saw_resume = false, saw_preempted_segment = false;
  for (const auto& t : spans.tracks()) {
    if (t.id != 0) continue;
    for (const auto& m : t.instants) {
      saw_preempt |= m.mark == obs::SpanMark::kPreempt;
      saw_resume |= m.mark == obs::SpanMark::kResume;
    }
    for (const auto& s : t.segments) {
      saw_preempted_segment |= s.phase == obs::SpanPhase::kPreempted;
    }
  }
  EXPECT_TRUE(saw_preempt);
  EXPECT_TRUE(saw_resume);
  EXPECT_TRUE(saw_preempted_segment);
}

// ----------------------------------------------------- perfetto + json ----

namespace {

size_t count_of(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

TEST(ServingTrace, PerfettoExportIsWellFormed) {
  // Segmented integrity path under a fault campaign with EDF preemption:
  // requests have multi-segment timelines (boundary segments, rollback
  // replays, suspension gaps, cross-core resumes), so the export exercises
  // slices, instants AND flow arrows.
  serve::Cluster cluster(cluster_config(4, 1, /*integrity=*/true), kFcNets);
  auto sc = telemetered(serve::Policy::kDeadline);
  sc.fault.seed = 0xF00D;
  sc.fault.rate_of(fault::Target::kTcdm) = 3e-4;
  sc.integrity.detect = true;
  sc.integrity.preemption = true;
  serve::Scheduler sched(&cluster, sc);
  serve::WorkloadConfig wc;
  wc.networks = kFcNets;
  wc.requests = 48;
  wc.mean_interarrival_cycles = 2000;  // oversubscribed: EDF must preempt
  wc.deadline_slack_cycles = 80'000;
  wc.seed = 0x5EED;
  const auto r = sched.run(serve::make_poisson_workload(cluster, wc));
  ASSERT_GT(r.preemptions + r.retries, 0u);  // suspension/re-dispatch gaps
  const std::string json = serve::serving_perfetto_trace(r).dump();

  // Structurally valid trace-event JSON (region/net names carry no
  // brackets, so bracket counting is a real balance check here).
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(count_of(json, "{"), count_of(json, "}"));
  EXPECT_EQ(count_of(json, "["), count_of(json, "]"));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);

  // One named track per core plus the scheduler track, on one process.
  EXPECT_NE(json.find("\"serving cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  for (int c = 0; c < cluster.cores(); ++c) {
    EXPECT_NE(json.find("\"core " + std::to_string(c) + "\""),
              std::string::npos);
  }
  // Complete events carry durations; request slices are present.
  EXPECT_GT(count_of(json, "\"ph\":\"X\""), 0u);
  EXPECT_EQ(count_of(json, "\"ph\":\"X\""), count_of(json, "\"dur\":"));
  EXPECT_GT(count_of(json, "\"ph\":\"i\""), 0u);
  // Preemption resumes and retry re-dispatches migrate segments across
  // cores / leave gaps, so flow arrows exist and some flow finishes.
  EXPECT_GT(count_of(json, "\"ph\":\"s\""), 0u);
  EXPECT_GT(count_of(json, "\"ph\":\"f\""), 0u);
}

TEST(ServingTelemetry, JsonBlockIsByteDeterministicAndGated) {
  auto run_json = [](bool telemetry) {
    serve::Cluster cluster(cluster_config(2, 4), kFcNets);
    serve::SchedulerConfig sc = telemetered(serve::Policy::kBatched);
    sc.telemetry.enabled = telemetry;
    serve::Scheduler sched(&cluster, sc);
    return serve_result_to_json(sched.run(small_workload(cluster, 24, 0x5EED)),
                                500.0)
        .dump_pretty();
  };
  const std::string on_a = run_json(true);
  const std::string on_b = run_json(true);
  EXPECT_EQ(on_a, on_b);  // byte-deterministic snapshot
  EXPECT_NE(on_a.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(on_a.find("\"identity_holds\": true"), std::string::npos);
  EXPECT_NE(on_a.find("\"latency_cycles\""), std::string::npos);
  // Telemetry off (the default): no telemetry key at all, and the rest of
  // the report is byte-identical to the telemetered run minus that block —
  // the passive-observer contract (scheduling is never perturbed).
  const std::string off = run_json(false);
  EXPECT_EQ(off.find("\"telemetry\""), std::string::npos);
  EXPECT_EQ(off.find("\"spans\""), std::string::npos);
  // Shared prefix up to where the telemetry block starts.
  const size_t tel_at = on_a.find("\"telemetry\"");
  ASSERT_NE(tel_at, std::string::npos);
  const size_t prefix = on_a.rfind(',', tel_at);
  EXPECT_EQ(on_a.substr(0, prefix), off.substr(0, prefix));
}

TEST(ServingTelemetry, SampleEveryBoundsRetainedTracks) {
  serve::Cluster cluster(cluster_config(2, 4), kFcNets);
  serve::SchedulerConfig sc = telemetered(serve::Policy::kBatched);
  sc.telemetry.sample_every = 4;
  serve::Scheduler sched(&cluster, sc);
  const auto r = sched.run(small_workload(cluster, 24, 0x5EED));
  ASSERT_TRUE(r.telemetry);
  const auto& spans = r.telemetry->spans;
  // Aggregates still cover every request; only retained timelines thin out.
  EXPECT_EQ(spans.spans_closed(),
            r.completions.size() + r.rejections.size() + r.failed.size());
  EXPECT_LE(spans.tracks().size(), (spans.spans_closed() + 3) / 4);
  EXPECT_GT(spans.tracks().size(), 0u);
}

// ----------------------------------------------------------- flamegraph ----

TEST(Flamegraph, CollapsedStackLinesSumToObservedCycles) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "ahmed19";
  req.level = OptLevel::kInputTiling;
  req.observe = true;
  const auto r = eng.run(req).result;
  ASSERT_TRUE(r.obs);

  const std::string folded = obs::to_collapsed_stacks(*r.obs);
  ASSERT_FALSE(folded.empty());
  uint64_t sum = 0;
  size_t start = 0;
  while (start < folded.size()) {
    const size_t eol = folded.find('\n', start);
    ASSERT_NE(eol, std::string::npos);  // every line is newline-terminated
    const std::string line = folded.substr(start, eol - start);
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos);
    // Stack part is rooted at the net name and uses ';' separators.
    EXPECT_EQ(line.rfind("ahmed19;", 0), 0u) << line;
    sum += std::stoull(line.substr(sp + 1));
    start = eol + 1;
  }
  // The acceptance identity: line values are *self* cycles, so they sum to
  // the observed total (attributed + unattributed) exactly.
  EXPECT_EQ(sum, r.obs->cycles);
}

TEST(Flamegraph, RegionsJsonAlignsWithCollapsedStacks) {
  rrm::Engine eng;
  rrm::Request req;
  req.network = "ahmed19";
  req.level = OptLevel::kInputTiling;
  req.observe = true;
  const auto r = eng.run(req).result;
  ASSERT_TRUE(r.obs);
  const std::string json = obs::regions_to_json(*r.obs).dump();
  // Every nonzero-cycle region path from the flamegraph (minus the net-name
  // root and the synthetic "(outside)" frame) appears as a JSON region key.
  const std::string folded = obs::to_collapsed_stacks(*r.obs);
  size_t start = 0, checked = 0;
  while (start < folded.size()) {
    const size_t eol = folded.find('\n', start);
    const std::string line = folded.substr(start, eol - start);
    start = eol + 1;
    const size_t sp = line.rfind(' ');
    std::string path = line.substr(0, sp);
    path = path.substr(path.find(';') + 1);  // strip the net-name root
    if (path == "(outside)") continue;
    EXPECT_NE(json.find("\"path\":\"" + path + "\""), std::string::npos) << path;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}
