// Tests for the tracing/profiling infrastructure.
#include <gtest/gtest.h>

#include "src/asm/parser.h"
#include "src/iss/trace.h"

namespace rnnasip::iss {
namespace {

assembler::Program loop_program() {
  return assembler::assemble(R"(
      li a0, 0
      lp.setupi 0, 50, end
      addi a0, a0, 1
      addi a1, a1, 2
    end:
      ebreak
  )");
}

TEST(TraceWriter, RecordsEveryRetiredInstruction) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  TraceWriter tw(0);
  core.set_trace(tw.hook());
  const auto res = core.run();
  EXPECT_EQ(res.exit, RunResult::Exit::kEbreak);
  // li + setup + 100 body + the terminating ebreak.
  EXPECT_EQ(tw.lines().size(), 103u);
  EXPECT_NE(tw.str().find("lp.setupi"), std::string::npos);
  EXPECT_NE(tw.str().find("addi a0, a0, 1"), std::string::npos);
  EXPECT_NE(tw.str().find("ebreak"), std::string::npos);
}

TEST(TraceWriter, CycleColumnAgreesWithExecStats) {
  // A load-use stall is attributed post-hoc: without the stall hook the
  // trace's cycle column would drift below ExecStats::total_cycles().
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = assembler::assemble(R"(
      li a0, 64
      sw a0, 0(a0)
      lw a1, 0(a0)
      addi a1, a1, 1   # load-use: consumer directly after the load
      lw a2, 0(a0)
      add a2, a2, a1   # and another one
      ebreak
  )");
  core.load_program(p);
  core.reset(p.base);
  TraceWriter tw(0);
  tw.attach(core);
  const auto res = core.run();
  ASSERT_EQ(res.exit, RunResult::Exit::kEbreak);
  EXPECT_GT(core.stats().stall_cycles(StallCause::kLoadUse), 0u);
  EXPECT_EQ(tw.cycles(), core.stats().total_cycles());
}

TEST(TraceWriter, CapsAndReportsTruncation) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  TraceWriter tw(10);
  core.set_trace(tw.hook());
  core.run();
  EXPECT_EQ(tw.lines().size(), 10u);
  EXPECT_TRUE(tw.truncated());
  EXPECT_NE(tw.str().find("truncated"), std::string::npos);
}

TEST(Profiler, FindsTheLoopBodyAsHotspot) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  Profiler prof;
  core.set_trace(prof.hook());
  core.run();
  ASSERT_GT(prof.total_cycles(), 100u);
  const auto hot = prof.hotspots(p, 2);
  ASSERT_EQ(hot.size(), 2u);
  // The two loop-body addis each account for ~49% of cycles.
  EXPECT_EQ(hot[0].cycles, 50u);
  EXPECT_EQ(hot[1].cycles, 50u);
  EXPECT_GT(hot[0].share, 0.4);
  EXPECT_NE(hot[0].disasm.find("addi"), std::string::npos);
}

TEST(Profiler, HotspotDisasmTracksRewrittenText) {
  // The profiler keys decoded instructions by PC. When text at a PC is
  // rewritten between runs (fault campaigns, self-modifying programs), the
  // hotspot report must show what ran *last*, not the first decode.
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p1 = assembler::assemble(R"(
      addi a0, zero, 1
      ebreak
  )");
  core.load_program(p1);
  core.reset(p1.base);
  Profiler prof;
  prof.attach(core);
  core.run();
  const auto p2 = assembler::assemble(R"(
      xor a0, a0, a0
      ebreak
  )");
  ASSERT_EQ(p1.base, p2.base);
  core.load_program(p2);
  core.reset(p2.base);
  core.run();
  // Disassemble against the stale p1 listing on purpose: the profiler's own
  // per-PC record must win.
  const auto hot = prof.hotspots(p1, 10);
  bool found = false;
  for (const auto& h : hot) {
    if (h.pc == p2.base) {
      EXPECT_NE(h.disasm.find("xor"), std::string::npos) << h.disasm;
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Profiler, HotspotSharesIncludePostHocStalls) {
  // With the stall hook attached, hotspot shares are computed against the
  // full cycle count (issue + post-hoc stalls) and still sum to 1.
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = assembler::assemble(R"(
      li a0, 64
      sw a0, 0(a0)
      lw a1, 0(a0)
      addi a1, a1, 1
      ebreak
  )");
  core.load_program(p);
  core.reset(p.base);
  Profiler prof;
  prof.attach(core);
  core.run();
  EXPECT_EQ(prof.total_cycles(), core.stats().total_cycles());
  const auto hot = prof.hotspots(p, 1000);
  double sum = 0;
  for (const auto& h : hot) sum += h.share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Profiler, SharesSumToOne) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  Profiler prof;
  core.set_trace(prof.hook());
  core.run();
  const auto hot = prof.hotspots(p, 1000);
  double sum = 0;
  for (const auto& h : hot) sum += h.share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace rnnasip::iss
