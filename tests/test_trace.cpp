// Tests for the tracing/profiling infrastructure.
#include <gtest/gtest.h>

#include "src/asm/parser.h"
#include "src/iss/trace.h"

namespace rnnasip::iss {
namespace {

assembler::Program loop_program() {
  return assembler::assemble(R"(
      li a0, 0
      lp.setupi 0, 50, end
      addi a0, a0, 1
      addi a1, a1, 2
    end:
      ebreak
  )");
}

TEST(TraceWriter, RecordsEveryRetiredInstruction) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  TraceWriter tw(0);
  core.set_trace(tw.hook());
  const auto res = core.run();
  EXPECT_EQ(res.exit, RunResult::Exit::kEbreak);
  // li + setup + 100 body (ebreak is not traced through execute()).
  EXPECT_EQ(tw.lines().size(), 102u);
  EXPECT_NE(tw.str().find("lp.setupi"), std::string::npos);
  EXPECT_NE(tw.str().find("addi a0, a0, 1"), std::string::npos);
}

TEST(TraceWriter, CapsAndReportsTruncation) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  TraceWriter tw(10);
  core.set_trace(tw.hook());
  core.run();
  EXPECT_EQ(tw.lines().size(), 10u);
  EXPECT_TRUE(tw.truncated());
  EXPECT_NE(tw.str().find("truncated"), std::string::npos);
}

TEST(Profiler, FindsTheLoopBodyAsHotspot) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  Profiler prof;
  core.set_trace(prof.hook());
  core.run();
  ASSERT_GT(prof.total_cycles(), 100u);
  const auto hot = prof.hotspots(p, 2);
  ASSERT_EQ(hot.size(), 2u);
  // The two loop-body addis each account for ~49% of cycles.
  EXPECT_EQ(hot[0].cycles, 50u);
  EXPECT_EQ(hot[1].cycles, 50u);
  EXPECT_GT(hot[0].share, 0.4);
  EXPECT_NE(hot[0].disasm.find("addi"), std::string::npos);
}

TEST(Profiler, SharesSumToOne) {
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  const auto p = loop_program();
  core.load_program(p);
  core.reset(p.base);
  Profiler prof;
  core.set_trace(prof.hook());
  core.run();
  const auto hot = prof.hotspots(p, 1000);
  double sum = 0;
  for (const auto& h : hot) sum += h.share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace rnnasip::iss
