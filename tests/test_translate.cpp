// Translated-backend contracts (src/translate behind exec::ExecutionBackend):
//   - translation refuses unsound inputs with structured codes (bad-text /
//     isa-gated / verify-failed) instead of emitting wrong code,
//   - 50-program parity: every suite network at every optimization level
//     serves bit-identical outputs, cycles, and instruction counts on the
//     translated backend and the ISS (the CI parity gate),
//   - cycle attribution is exact, not modeled: core-level cycles match the
//     ISS bit-for-bit and never undercut the static verifier bound,
//   - ABFT-instrumented programs fold bit-identical checksums on both
//     backends at every layer boundary,
//   - a mid-run snapshot migrates across backends (translated -> ISS and
//     ISS -> translated) with bit-exact outputs and total cycles,
//   - the engine rejects fault campaigns and watchdog-armed requests on
//     the translated backend with a structured kBackendUnsupported trap
//     (never silently running untranslated semantics), and falls back to
//     the ISS for observed runs,
//   - a translated cluster serves completions bit-identical to an ISS
//     cluster, and faulted/observed executions record their ISS fallback
//     in ExecResult::backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/analysis/network_lint.h"
#include "src/integrity/integrity.h"
#include "src/iss/core.h"
#include "src/iss/memory.h"
#include "src/kernels/network.h"
#include "src/rrm/engine.h"
#include "src/serve/cluster.h"
#include "src/serve/scheduler.h"
#include "src/translate/tcore.h"
#include "src/translate/translate.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

constexpr uint64_t kSeed = 0x52414D;

/// One network on a private core/memory pair, buildable plain or
/// instrumented, with a bound TranslatedCore next to the ISS core so a
/// test can drive the same image on either backend.
struct Harness {
  iss::Memory mem{16u << 20};
  iss::Core core{&mem};
  exec::IssBackend iss_backend{&core};
  rrm::RrmNetwork net;
  kernels::BuiltNetwork built;
  translate::TranslatedCore tcore{&mem};

  Harness(const std::string& name, OptLevel level, bool integrity = false)
      : net(rrm::find_network(name), kSeed) {
    built = net.build(&mem, level, core.tanh_table(), core.sig_table(),
                      /*max_tile=*/8, /*param_base=*/0, integrity);
    core.load_program(built.program);
    auto tr = translate::translate(built.program, analysis::memory_map_of(built),
                                   iss::Core::Config{});
    RNNASIP_CHECK_MSG(tr.ok(), "translate refused [" << tr.error.code
                                                     << "]: " << tr.error.message);
    tcore.bind(tr.program);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Refusal paths: every unsound input is refused with its structured code.
// ---------------------------------------------------------------------------

TEST(TranslateRefusal, EmptyProgramIsBadText) {
  const auto tr = translate::translate({}, {}, {});
  ASSERT_FALSE(tr.ok());
  EXPECT_EQ(tr.error.code, "bad-text");
  EXPECT_EQ(tr.program, nullptr);
}

TEST(TranslateRefusal, GatedIsaIsRefusedAtTranslateTime) {
  // A level-e program leans on Xpulp; translating it for a core with the
  // extension gated off must refuse (the ISS would trap at runtime — the
  // fast path must never reach those semantics at all).
  Harness h("nasir18", OptLevel::kXpulpSimd);
  iss::Core::Config gated;
  gated.has_xpulp = false;
  const auto tr = translate::translate(h.built.program,
                                       analysis::memory_map_of(h.built), gated);
  ASSERT_FALSE(tr.ok());
  EXPECT_EQ(tr.error.code, "isa-gated");
  EXPECT_NE(tr.error.message.find("gated off"), std::string::npos);
}

TEST(TranslateRefusal, VerifierErrorRefuses) {
  // Shrink the declared map to the text segment only: every data access
  // becomes out-of-map, the static verifier errors, translation refuses.
  Harness h("ahmed19", OptLevel::kInputTiling);
  iss::MemoryMap text_only;
  text_only.add({"text", h.built.program.base, h.built.program.size_bytes(),
                 /*writable=*/false});
  const auto tr =
      translate::translate(h.built.program, text_only, iss::Core::Config{});
  ASSERT_FALSE(tr.ok());
  EXPECT_EQ(tr.error.code, "verify-failed");
}

// ---------------------------------------------------------------------------
// The CI parity gate: all 50 network x level programs, both backends.
// ---------------------------------------------------------------------------

TEST(TranslateParity, FiftyProgramsBitIdenticalAcrossBackends) {
  rrm::Engine::Config iss_cfg;
  rrm::Engine::Config tr_cfg;
  tr_cfg.backend = ExecBackend::kTranslated;
  rrm::Engine iss_eng(iss_cfg);
  rrm::Engine tr_eng(tr_cfg);

  int programs = 0;
  for (OptLevel level : kernels::kAllOptLevels) {
    for (const auto& def : rrm::rrm_suite()) {
      rrm::Request req;
      req.network = def.name;
      req.level = level;
      req.timesteps = 2;
      req.verify = true;
      const auto a = iss_eng.run(req);
      const auto b = tr_eng.run(req);
      const std::string tag =
          std::string(def.name) + " @" + kernels::opt_level_name(level);
      ASSERT_TRUE(a.ok()) << tag << ": " << a.result.trap.message;
      ASSERT_TRUE(b.ok()) << tag << ": " << b.result.trap.message;
      EXPECT_TRUE(a.result.verified) << tag;
      EXPECT_TRUE(b.result.verified) << tag;
      EXPECT_EQ(a.outputs, b.outputs) << tag;
      EXPECT_EQ(a.result.cycles, b.result.cycles) << tag;
      EXPECT_EQ(a.result.instrs, b.result.instrs) << tag;
      ++programs;
    }
  }
  EXPECT_EQ(programs, 50);
}

// ---------------------------------------------------------------------------
// Cycle attribution: exact against the ISS, bounded below by the verifier.
// ---------------------------------------------------------------------------

TEST(TranslateParity, CycleAttributionExactAndNeverBelowStaticBound) {
  for (const auto& name : {"nasir18", "ahmed19", "naparstek17"}) {
    for (OptLevel level : {OptLevel::kXpulpSimd, OptLevel::kInputTiling}) {
      Harness h(name, level);
      const auto* prog = h.tcore.program();
      ASSERT_NE(prog, nullptr);

      // Two recurrent timesteps on each backend: state carries across the
      // first forward, so the second catches any divergence the first hid.
      iss::Memory iss_mem{16u << 20};
      iss::Core iss_core{&iss_mem};
      rrm::RrmNetwork iss_net(rrm::find_network(name), kSeed);
      auto iss_built = iss_net.build(&iss_mem, level, iss_core.tanh_table(),
                                     iss_core.sig_table(), /*max_tile=*/8);
      iss_core.load_program(iss_built.program);

      for (int t = 0; t < 2; ++t) {
        const auto input = h.net.make_input(t);
        auto fi = kernels::try_run_forward(iss_core, iss_mem, iss_built, input);
        auto ft = kernels::try_run_forward(h.tcore, h.mem, h.built, input);
        ASSERT_TRUE(fi.ok()) << fi.result.trap_message;
        ASSERT_TRUE(ft.ok()) << ft.result.trap_message;
        EXPECT_EQ(fi.outputs, ft.outputs) << name << " t=" << t;
        EXPECT_EQ(fi.result.cycles, ft.result.cycles) << name << " t=" << t;
        EXPECT_EQ(fi.result.instrs, ft.result.instrs) << name << " t=" << t;
        // The verifier's static minimum is a sound lower bound on any
        // dynamic execution; the translated cycle stream must respect it.
        EXPECT_GE(ft.result.cycles, prog->static_min_cycles) << name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ABFT: instrumented programs fold identical checksums on both backends.
// ---------------------------------------------------------------------------

TEST(TranslateParity, AbftChecksumsBitIdenticalAcrossBackends) {
  for (const auto& def : rrm::rrm_suite()) {
    Harness hi(def.name, OptLevel::kInputTiling, /*integrity=*/true);
    Harness ht(def.name, OptLevel::kInputTiling, /*integrity=*/true);
    ASSERT_FALSE(hi.built.checks.empty()) << def.name;
    const auto input = hi.net.make_input(0);
    const auto golden = integrity::golden_checks(hi.net, hi.core.tanh_table(),
                                                 hi.core.sig_table(), input);

    integrity::CheckedRun ri(&hi.iss_backend, &hi.mem, &hi.built, {});
    integrity::CheckedRun rt(&ht.tcore, &ht.mem, &ht.built, {});
    ri.set_golden(golden);
    rt.set_golden(golden);
    ri.begin(input);
    rt.begin(input);

    // Walk both runs boundary by boundary, comparing the device fold word
    // each program wrote into its slot — the raw checksum, not just the
    // pass/fail verdict.
    integrity::CheckedRun::State si, st;
    size_t boundary = 0;
    do {
      si = ri.step();
      st = rt.step();
      ASSERT_EQ(si, st) << def.name << " boundary " << boundary;
      if (si == integrity::CheckedRun::State::kBoundary) {
        ASSERT_LT(boundary, hi.built.checks.size());
        const uint32_t slot = hi.built.checks[boundary].slot;
        EXPECT_EQ(hi.mem.read_words_signed(slot, 1),
                  ht.mem.read_words_signed(slot, 1))
            << def.name << " boundary " << boundary;
        ++boundary;
      }
    } while (si == integrity::CheckedRun::State::kBoundary);

    ASSERT_EQ(si, integrity::CheckedRun::State::kDone)
        << def.name << ": " << ri.last_result().trap_message;
    EXPECT_EQ(ri.outputs(), rt.outputs()) << def.name;
    EXPECT_EQ(ri.cycles(), rt.cycles()) << def.name;
    EXPECT_EQ(ri.counters().checks, rt.counters().checks) << def.name;
    EXPECT_EQ(rt.counters().detections, 0u) << def.name;
  }
}

// ---------------------------------------------------------------------------
// Snapshot migration: suspend mid-run on one backend, finish on the other.
// ---------------------------------------------------------------------------

TEST(TranslateSnapshot, MidRunMigrationAcrossBackendsIsBitExact) {
  const char* name = "nasir18";
  const OptLevel level = OptLevel::kInputTiling;

  // Reference run (pure ISS) for the expected outputs and total cycles.
  Harness ref(name, level);
  const auto input = ref.net.make_input(0);
  const auto whole =
      kernels::try_run_forward(ref.core, ref.mem, ref.built, input);
  ASSERT_TRUE(whole.ok()) << whole.result.trap_message;

  for (bool start_translated : {true, false}) {
    Harness h(name, level);
    kernels::reset_state(h.mem, h.built);
    h.mem.write_halves(h.built.input_addr, input);
    exec::ExecutionBackend& first =
        start_translated ? static_cast<exec::ExecutionBackend&>(h.tcore)
                         : static_cast<exec::ExecutionBackend&>(h.iss_backend);
    exec::ExecutionBackend& second =
        start_translated ? static_cast<exec::ExecutionBackend&>(h.iss_backend)
                         : static_cast<exec::ExecutionBackend&>(h.tcore);

    first.reset(h.built.program.base);
    iss::RunLimits part;
    part.max_instrs = 1000;
    const auto r1 = first.run(part);
    ASSERT_EQ(r1.exit, iss::RunResult::Exit::kMaxInstrs);

    // Migrate: the snapshot carries the whole architectural state; memory
    // stays where the suspended run left it.
    second.restore(first.snapshot());
    const auto r2 = second.run({});
    ASSERT_EQ(r2.exit, iss::RunResult::Exit::kEbreak) << r2.trap_message;

    EXPECT_EQ(h.mem.read_halves(h.built.output_addr,
                                static_cast<size_t>(h.built.output_count)),
              whole.outputs)
        << (start_translated ? "translated->iss" : "iss->translated");
    EXPECT_EQ(r1.cycles + r2.cycles, whole.result.cycles);
    EXPECT_EQ(r1.instrs + r2.instrs, whole.result.instrs);
  }
}

// ---------------------------------------------------------------------------
// Engine policy: structured rejection, never silent untranslated semantics.
// ---------------------------------------------------------------------------

TEST(TranslateEnginePolicy, FaultCampaignIsRejectedWithStructuredTrap) {
  rrm::Engine::Config cfg;
  cfg.backend = ExecBackend::kTranslated;
  rrm::Engine eng(cfg);
  rrm::Request req;
  req.network = "nasir18";
  req.fault.rate_of(fault::Target::kTcdm) = 1e-4;
  const auto resp = eng.run(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_FALSE(resp.result.completed);
  EXPECT_EQ(resp.result.steps_completed, 0);
  EXPECT_EQ(resp.result.trap.cause, iss::TrapCause::kBackendUnsupported);
  EXPECT_NE(resp.result.trap.message.find("ISS"), std::string::npos);
}

TEST(TranslateEnginePolicy, WatchdogArmedRunIsRejectedWithStructuredTrap) {
  rrm::Engine::Config cfg;
  cfg.backend = ExecBackend::kTranslated;
  rrm::Engine eng(cfg);
  rrm::Request req;
  req.network = "nasir18";
  req.watchdog_cycles = 10'000;
  const auto resp = eng.run(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.result.trap.cause, iss::TrapCause::kBackendUnsupported);
}

TEST(TranslateEnginePolicy, ObservedRunFallsBackToIssWithIdenticalResults) {
  // Observability hooks the interpreter, so an observed request on a
  // translated engine runs the ISS — documented fallback, identical
  // results, and the profile actually materializes.
  rrm::Engine::Config cfg;
  cfg.backend = ExecBackend::kTranslated;
  rrm::Engine eng(cfg);
  rrm::Engine iss_eng(rrm::Engine::Config{});
  rrm::Request req;
  req.network = "ahmed19";
  req.verify = true;
  req.observe = true;
  const auto a = eng.run(req);
  const auto b = iss_eng.run(req);
  ASSERT_TRUE(a.ok()) << a.result.trap.message;
  ASSERT_NE(a.result.obs, nullptr);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
}

// ---------------------------------------------------------------------------
// Serving: cluster/scheduler parity and the recorded ISS fallback.
// ---------------------------------------------------------------------------

namespace {

serve::ServeResult serve_suite(ExecBackend backend) {
  serve::ClusterConfig cc;
  cc.backend = backend;
  cc.cores = 2;
  cc.batch = 4;
  std::vector<std::string> nets;
  for (const auto& def : rrm::rrm_suite()) nets.push_back(def.name);
  serve::Cluster cluster(cc, nets);
  serve::WorkloadConfig wc;
  wc.networks = nets;
  wc.requests = 64;
  wc.mean_interarrival_cycles = 2000;
  wc.seed = 0x5EED;
  serve::SchedulerConfig sc;
  sc.policy = serve::Policy::kBatched;
  serve::Scheduler sched(&cluster, sc);
  return sched.run(serve::make_poisson_workload(cluster, wc));
}

}  // namespace

TEST(TranslateServing, SchedulerCompletionsBitIdenticalAcrossBackends) {
  const auto a = serve_suite(ExecBackend::kIss);
  const auto b = serve_suite(ExecBackend::kTranslated);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  std::map<uint64_t, const serve::Completion*> by_id;
  for (const auto& c : a.completions) by_id[c.id] = &c;
  for (const auto& c : b.completions) {
    const auto it = by_id.find(c.id);
    ASSERT_NE(it, by_id.end()) << c.id;
    EXPECT_EQ(it->second->outputs, c.outputs) << c.id;
    EXPECT_EQ(it->second->exec_cycles, c.exec_cycles) << c.id;
    EXPECT_EQ(it->second->done, c.done) << c.id;
  }
}

TEST(TranslateServing, FaultedAndObservedExecutionsRecordIssFallback) {
  serve::ClusterConfig cc;
  cc.backend = ExecBackend::kTranslated;
  cc.cores = 1;
  serve::Cluster cluster(cc, {"nasir18"});
  const auto input = cluster.network("nasir18").make_input(0);

  // Fault-free execution runs translated, and says so.
  auto clean = cluster.run_single(0, "nasir18", input);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.backend, ExecBackend::kTranslated);

  // A faulted execution must run the ISS (injection hooks the interpreter)
  // and record the fallback — never silently run translated semantics.
  fault::FaultSpec spec;
  spec.seed = 0x5EED;
  spec.rate_of(fault::Target::kTcdm) = 1e-5;
  auto faulted = cluster.run_single(0, "nasir18", input, &spec);
  EXPECT_EQ(faulted.backend, ExecBackend::kIss);

  // An observed cluster profiles through the interpreter on every run.
  serve::ClusterConfig oc = cc;
  oc.observe = true;
  serve::Cluster observed(oc, {"nasir18"});
  auto obs = observed.run_single(0, "nasir18", input);
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs.backend, ExecBackend::kIss);
  EXPECT_EQ(obs.outputs, clean.outputs);
  EXPECT_EQ(obs.cycles, clean.cycles);
}
