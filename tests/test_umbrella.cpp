// Compile-and-link check of the umbrella header: one translation unit that
// touches every exported subsystem.
#include <gtest/gtest.h>

#include "src/rnnasip.h"

namespace rnnasip {
namespace {

TEST(Umbrella, EverySubsystemIsReachable) {
  // isa + asm
  assembler::ProgramBuilder b;
  b.li(isa::kA0, 1);
  b.ebreak();
  const auto prog = b.build();
  EXPECT_FALSE(prog.instrs.empty());
  EXPECT_FALSE(assembler::disassemble(prog).empty());
  EXPECT_TRUE(isa::decode(prog.encode_words()[0]).has_value());
  // iss
  iss::Memory mem(1u << 20);
  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  EXPECT_TRUE(core.run().ok());
  // activation
  EXPECT_EQ(core.tanh_table().eval_raw(0), 0);
  // nn
  Rng rng(1);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 4, 2, nn::ActKind::kNone));
  EXPECT_EQ(fc.w.rows, 2);
  // rrm
  EXPECT_EQ(rrm::rrm_suite().size(), 10u);
  rrm::InterferenceField field(2, 1);
  EXPECT_GT(rrm::wmmse(field).iterations, 0);
  // impl model
  impl_model::AreaModel area;
  EXPECT_NEAR(area.extension_kge(), 2.3, 1e-9);
}

}  // namespace
}  // namespace rnnasip
