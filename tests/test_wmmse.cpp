// Tests for the classical WMMSE power-allocation baseline.
#include <gtest/gtest.h>

#include "src/rrm/wmmse.h"

namespace rnnasip::rrm {
namespace {

TEST(Wmmse, BeatsFullPowerInInterferenceLimitedScenes) {
  // With strong cross-interference, backing some links off must improve the
  // sum-rate over everyone-at-max-power (the whole point of the algorithm).
  int wins = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    InterferenceField f(8, seed, /*area=*/30.0);  // dense -> interference-limited
    WmmseOptions opt;
    const auto res = wmmse(f, opt);
    const double full = f.sum_rate(std::vector<double>(8, opt.p_max), opt.noise);
    if (res.rate_trace.back() > full + 1e-9) ++wins;
    // Never worse than full power by construction of the initialization.
    EXPECT_GE(res.rate_trace.back(), full - 1e-6) << "seed " << seed;
  }
  EXPECT_GE(wins, 6);
}

TEST(Wmmse, SumRateIsMonotoneNonDecreasing) {
  InterferenceField f(6, 42, 40.0);
  const auto res = wmmse(f);
  for (size_t i = 1; i < res.rate_trace.size(); ++i) {
    EXPECT_GE(res.rate_trace[i], res.rate_trace[i - 1] - 1e-9) << "iteration " << i;
  }
}

TEST(Wmmse, ConvergesAndRespectsPowerBudget) {
  InterferenceField f(5, 77, 50.0);
  WmmseOptions opt;
  opt.p_max = 2.0;
  const auto res = wmmse(f, opt);
  EXPECT_LT(res.iterations, opt.max_iterations);  // tolerance-stopped
  for (double p : res.powers) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, opt.p_max + 1e-9);
  }
}

TEST(Wmmse, FlopCountScalesQuadratically) {
  WmmseOptions opt;
  opt.max_iterations = 10;
  opt.tolerance = 0;  // force all iterations
  InterferenceField f4(4, 9), f8(8, 9);
  const auto r4 = wmmse(f4, opt);
  const auto r8 = wmmse(f8, opt);
  ASSERT_EQ(r4.iterations, 10);
  ASSERT_EQ(r8.iterations, 10);
  const double ratio = static_cast<double>(r8.flops) / static_cast<double>(r4.flops);
  EXPECT_GT(ratio, 3.0);  // ~4x for 2x pairs
  EXPECT_LT(ratio, 5.0);
}

TEST(Wmmse, SingleLinkGoesFullPower) {
  // No interference: the optimum is transmit at the budget.
  InterferenceField f(1, 3);
  WmmseOptions opt;
  opt.p_max = 1.5;
  const auto res = wmmse(f, opt);
  EXPECT_NEAR(res.powers[0], 1.5, 1e-6);
}

}  // namespace
}  // namespace rnnasip::rrm
