// rnnasip_lint — static verification of the assembled RRM suite programs.
//
// Builds every suite network at the requested optimization levels, runs the
// analysis::verify pass pipeline against the build's declared memory map,
// and reports the findings. The process exit code is the CI gate: 0 when
// every linted program is clean (no errors, no warnings), 1 otherwise.
//
// Usage:
//   rnnasip_lint [--network NAME] [--level a|b|c|d|e] [--split]
//                [--measure] [--pedantic] [--json FILE] [--quiet]
//
//   --network NAME  lint one suite network (default: all 10)
//   --level X       lint one optimization level (default: all 5)
//   --split         build with a split read-only parameter region
//   --measure       also execute each program on the ISS and require
//                   static min_cycles <= measured cycles
//   --pedantic      print advisory (info) findings too
//   --json FILE     write a machine-readable report ("-" for stdout)
//   --quiet         only print failing cases and the summary
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/network_lint.h"
#include "src/iss/core.h"
#include "src/iss/memory.h"
#include "src/kernels/layout.h"
#include "src/kernels/network.h"
#include "src/kernels/opt_level.h"
#include "src/obs/json.h"
#include "src/rrm/networks.h"

namespace {

using namespace rnnasip;

struct CliOptions {
  std::string network;  // empty = all
  std::optional<kernels::OptLevel> level;
  bool split = false;
  bool measure = false;
  bool pedantic = false;
  bool quiet = false;
  std::string json_path;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--network NAME] [--level a|b|c|d|e] [--split] [--measure]"
               " [--pedantic] [--json FILE] [--quiet]\n";
  return 2;
}

std::optional<kernels::OptLevel> parse_level(const std::string& s) {
  if (s.size() != 1 || s[0] < 'a' || s[0] > 'e') return std::nullopt;
  return static_cast<kernels::OptLevel>(s[0] - 'a');
}

struct CaseResult {
  std::string network;
  char level = 'a';
  bool split = false;
  analysis::Report report;
  uint64_t measured_cycles = 0;  // 0 = not measured
  bool bound_ok = true;
  bool gate_ok = true;
};

CaseResult lint_case(const rrm::RrmNetwork& net, kernels::OptLevel level,
                     const CliOptions& opt) {
  CaseResult res;
  res.network = net.def().name;
  res.level = kernels::opt_level_letter(level);
  res.split = opt.split;

  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  const uint32_t param_base = opt.split ? kernels::kParamBase : 0;
  const auto built = net.build(&mem, level, core.tanh_table(),
                               core.sig_table(), /*max_tile=*/8, param_base);

  analysis::Options vopts;
  res.report = analysis::verify_network(built, vopts);
  res.gate_ok = res.report.clean();

  if (opt.measure) {
    core.load_program(built.program);
    kernels::reset_state(mem, built);
    const auto input = net.make_input(0);
    auto fr = kernels::try_run_forward(core, mem, built, input);
    res.measured_cycles = fr.result.cycles;
    if (!fr.ok() || res.report.min_cycles > fr.result.cycles) {
      res.bound_ok = false;
      res.gate_ok = false;
    }
  }
  return res;
}

void print_case(const CaseResult& r, const CliOptions& opt) {
  const bool show_all = !opt.quiet || !r.gate_ok;
  if (!show_all) return;
  std::cout << r.network << " level=" << r.level
            << (r.split ? " (split)" : "") << ": ";
  if (r.report.clean()) {
    std::cout << "clean";
  } else {
    std::cout << r.report.errors() << " error(s), " << r.report.warnings()
              << " warning(s)";
  }
  std::cout << " [" << r.report.num_instrs << " instrs, "
            << r.report.num_hw_loops << " hw loops, "
            << r.report.num_counted_loops << " counted loops"
            << ", min_cycles=" << r.report.min_cycles;
  if (r.measured_cycles != 0) std::cout << ", measured=" << r.measured_cycles;
  std::cout << "]\n";
  for (const auto& f : r.report.findings) {
    if (f.severity == analysis::Severity::kInfo && !opt.pedantic) continue;
    std::printf("  %-7s %-20s pc=0x%05x  %s\n",
                analysis::severity_name(f.severity), f.rule.c_str(), f.pc,
                f.message.c_str());
  }
  if (!r.bound_ok)
    std::cout << "  error   perf.bound-violated  static lower bound "
              << r.report.min_cycles << " exceeds measured "
              << r.measured_cycles << " cycles\n";
}

obs::Json case_json(const CaseResult& r) {
  obs::Json c = obs::Json::object();
  c.set("network", r.network);
  c.set("level", std::string(1, r.level));
  c.set("split", r.split);
  c.set("clean", r.report.clean());
  c.set("errors", r.report.errors());
  c.set("warnings", r.report.warnings());
  c.set("infos", r.report.infos());
  c.set("instrs", static_cast<uint64_t>(r.report.num_instrs));
  c.set("hw_loops", static_cast<uint64_t>(r.report.num_hw_loops));
  c.set("counted_loops", static_cast<uint64_t>(r.report.num_counted_loops));
  c.set("min_cycles", r.report.min_cycles);
  if (r.measured_cycles != 0) {
    c.set("measured_cycles", r.measured_cycles);
    c.set("bound_ok", r.bound_ok);
  }
  obs::Json fs = obs::Json::array();
  for (const auto& f : r.report.findings) {
    obs::Json fj = obs::Json::object();
    fj.set("rule", f.rule);
    fj.set("severity", analysis::severity_name(f.severity));
    fj.set("pc", static_cast<uint64_t>(f.pc));
    fj.set("message", f.message);
    fs.push(std::move(fj));
  }
  c.set("findings", std::move(fs));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--network") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.network = v;
    } else if (a == "--level") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.level = parse_level(v);
      if (!opt.level) return usage(argv[0]);
    } else if (a == "--split") {
      opt.split = true;
    } else if (a == "--measure") {
      opt.measure = true;
    } else if (a == "--pedantic") {
      opt.pedantic = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.json_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<CaseResult> results;
  int failed = 0;
  for (const auto& def : rrm::rrm_suite()) {
    if (!opt.network.empty() && def.name != opt.network) continue;
    const rrm::RrmNetwork net{def};
    for (kernels::OptLevel level : kernels::kAllOptLevels) {
      if (opt.level && level != *opt.level) continue;
      CaseResult r = lint_case(net, level, opt);
      print_case(r, opt);
      if (!r.gate_ok) ++failed;
      results.push_back(std::move(r));
    }
  }
  if (results.empty()) {
    std::cerr << "no matching network/level\n";
    return 2;
  }

  std::cout << results.size() << " program(s) linted, " << failed
            << " failing\n";

  if (!opt.json_path.empty()) {
    obs::Json root = obs::Json::object();
    root.set("tool", "rnnasip_lint");
    root.set("cases", obs::Json::array());
    obs::Json cases = obs::Json::array();
    for (const auto& r : results) cases.push(case_json(r));
    root.set("cases", std::move(cases));
    root.set("total", static_cast<uint64_t>(results.size()));
    root.set("failing", failed);
    const std::string text = root.dump_pretty() + "\n";
    if (opt.json_path == "-") {
      std::cout << text;
    } else {
      std::ofstream out(opt.json_path);
      if (!out) {
        std::cerr << "cannot write " << opt.json_path << "\n";
        return 2;
      }
      out << text;
    }
  }
  return failed == 0 ? 0 : 1;
}
