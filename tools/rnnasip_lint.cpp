// rnnasip_lint — static verification of the assembled RRM suite programs.
//
// Builds every suite network at the requested optimization levels, runs the
// analysis::verify pass pipeline against the build's declared memory map,
// and reports the findings. The process exit code is the CI gate: 0 when
// every linted program is clean (no errors, no warnings), 1 otherwise.
//
// Usage:
//   rnnasip_lint [--network NAME] [--level a|b|c|d|e] [--split]
//                [--measure] [--backend iss|translated] [--wcet]
//                [--pedantic] [--json FILE] [--quiet]
//
//   --network NAME  lint one suite network (default: all 10)
//   --level X       lint one optimization level (default: all 5)
//   --split         build with a split read-only parameter region
//   --measure       also execute each program and require
//                   static min_cycles <= measured cycles
//   --backend B     execution backend for --measure/--wcet (default iss)
//   --wcet          certified-bound gate (implies --measure): every program
//                   must carry a WCET with min <= measured <= max, and at
//                   the optimized levels (d, e) the bound must be tight
//                   (max <= 1.5x measured); prints the tightness table
//   --pedantic      print advisory (info) findings too
//   --json FILE     write a machine-readable report ("-" for stdout); with
//                   --wcet the report is wrapped in the shared bench
//                   envelope (bench "wcet") so scripts/bench_diff.py can
//                   diff it against bench/baselines/BENCH_wcet.json
//   --quiet         only print failing cases and the summary
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/network_lint.h"
#include "src/exec/backend.h"
#include "src/iss/core.h"
#include "src/iss/memory.h"
#include "src/kernels/layout.h"
#include "src/kernels/network.h"
#include "src/kernels/opt_level.h"
#include "src/obs/json.h"
#include "src/rrm/networks.h"
#include "src/translate/tcore.h"
#include "src/translate/translate.h"

namespace {

using namespace rnnasip;

/// WCET tightness ceiling at the optimized levels (d, e): the certified
/// upper bound may exceed the measured cycles by at most this factor.
constexpr double kWcetTightness = 1.5;

struct CliOptions {
  std::string network;  // empty = all
  std::optional<kernels::OptLevel> level;
  bool split = false;
  bool measure = false;
  bool wcet = false;
  ExecBackend backend = ExecBackend::kIss;
  bool pedantic = false;
  bool quiet = false;
  std::string json_path;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--network NAME] [--level a|b|c|d|e] [--split] [--measure]"
               " [--backend iss|translated] [--wcet] [--pedantic]"
               " [--json FILE] [--quiet]\n";
  return 2;
}

std::optional<kernels::OptLevel> parse_level(const std::string& s) {
  if (s.size() != 1 || s[0] < 'a' || s[0] > 'e') return std::nullopt;
  return static_cast<kernels::OptLevel>(s[0] - 'a');
}

struct CaseResult {
  std::string network;
  char level = 'a';
  bool split = false;
  analysis::Report report;
  uint64_t measured_cycles = 0;  // 0 = not measured
  bool bound_ok = true;          // min_cycles <= measured
  bool wcet_ok = true;           // bounded and measured <= max_cycles
  bool tight_ok = true;          // max/measured <= kWcetTightness (d, e)
  std::string exec_error;        // non-empty when the measure run failed
  bool gate_ok = true;
};

/// Execute the built program once on the selected backend and return the
/// measured cycles (nullopt + exec_error on any trap or refusal).
std::optional<uint64_t> measure_once(iss::Memory& mem, iss::Core& core,
                                     const kernels::BuiltNetwork& built,
                                     const rrm::RrmNetwork& net,
                                     ExecBackend backend,
                                     std::string& exec_error) {
  kernels::reset_state(mem, built);
  const auto input = net.make_input(0);
  kernels::ForwardRun fr;
  if (backend == ExecBackend::kIss) {
    core.load_program(built.program);
    fr = kernels::try_run_forward(core, mem, built, input);
  } else {
    mem.write_words(built.program.base, built.program.encode_words());
    auto tr = translate::translate(built.program,
                                   analysis::memory_map_of(built),
                                   iss::Core::Config{});
    if (!tr.ok()) {
      exec_error = "translation refused [" + tr.error.code + "]: " +
                   tr.error.message;
      return std::nullopt;
    }
    translate::TranslatedCore tcore(&mem);
    tcore.bind(tr.program);
    fr = kernels::try_run_forward(tcore, mem, built, input);
  }
  if (!fr.ok()) {
    exec_error = fr.result.trap_message.empty() ? fr.result.describe()
                                                : fr.result.trap_message;
    return std::nullopt;
  }
  return fr.result.cycles;
}

CaseResult lint_case(const rrm::RrmNetwork& net, kernels::OptLevel level,
                     const CliOptions& opt) {
  CaseResult res;
  res.network = net.def().name;
  res.level = kernels::opt_level_letter(level);
  res.split = opt.split;

  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  const uint32_t param_base = opt.split ? kernels::kParamBase : 0;
  const auto built = net.build(&mem, level, core.tanh_table(),
                               core.sig_table(), /*max_tile=*/8, param_base);

  analysis::Options vopts;
  res.report = analysis::verify_network(built, vopts);
  res.gate_ok = res.report.clean();

  if (opt.measure || opt.wcet) {
    const auto measured =
        measure_once(mem, core, built, net, opt.backend, res.exec_error);
    if (!measured) {
      res.bound_ok = false;
      res.gate_ok = false;
    } else {
      res.measured_cycles = *measured;
      if (res.report.min_cycles > res.measured_cycles) {
        res.bound_ok = false;
        res.gate_ok = false;
      }
    }
  }
  if (opt.wcet && res.measured_cycles != 0) {
    res.wcet_ok = res.report.max_cycles != 0 &&
                  res.measured_cycles <= res.report.max_cycles;
    if (res.level == 'd' || res.level == 'e') {
      res.tight_ok =
          res.wcet_ok &&
          static_cast<double>(res.report.max_cycles) <=
              kWcetTightness * static_cast<double>(res.measured_cycles);
    }
    if (!res.wcet_ok || !res.tight_ok) res.gate_ok = false;
  }
  return res;
}

void print_case(const CaseResult& r, const CliOptions& opt) {
  const bool show_all = !opt.quiet || !r.gate_ok;
  if (!show_all) return;
  std::cout << r.network << " level=" << r.level
            << (r.split ? " (split)" : "") << ": ";
  if (r.report.clean()) {
    std::cout << "clean";
  } else {
    std::cout << r.report.errors() << " error(s), " << r.report.warnings()
              << " warning(s)";
  }
  std::cout << " [" << r.report.num_instrs << " instrs, "
            << r.report.num_hw_loops << " hw loops, "
            << r.report.num_counted_loops << " counted loops"
            << ", min_cycles=" << r.report.min_cycles;
  if (opt.wcet) std::cout << ", max_cycles=" << r.report.max_cycles;
  if (r.measured_cycles != 0) std::cout << ", measured=" << r.measured_cycles;
  if (opt.wcet && r.measured_cycles != 0 && r.report.min_cycles != 0 &&
      r.report.max_cycles != 0) {
    std::printf(", lb_tightness=%.3f, wcet_tightness=%.3f",
                static_cast<double>(r.measured_cycles) /
                    static_cast<double>(r.report.min_cycles),
                static_cast<double>(r.report.max_cycles) /
                    static_cast<double>(r.measured_cycles));
  }
  std::cout << "]\n";
  for (const auto& f : r.report.findings) {
    if (f.severity == analysis::Severity::kInfo && !opt.pedantic) continue;
    std::printf("  %-7s %-20s pc=0x%05x  %s\n",
                analysis::severity_name(f.severity), f.rule.c_str(), f.pc,
                f.message.c_str());
  }
  if (!r.exec_error.empty())
    std::cout << "  error   exec.failed          " << r.exec_error << "\n";
  if (!r.bound_ok && r.exec_error.empty())
    std::cout << "  error   perf.bound-violated  static lower bound "
              << r.report.min_cycles << " exceeds measured "
              << r.measured_cycles << " cycles\n";
  if (!r.wcet_ok) {
    if (r.report.max_cycles == 0)
      std::cout << "  error   perf.wcet-missing    no certified upper bound: "
                << r.report.wcet_unbounded_reason << "\n";
    else
      std::cout << "  error   perf.wcet-violated   measured "
                << r.measured_cycles << " exceeds certified WCET "
                << r.report.max_cycles << " cycles\n";
  }
  if (!r.tight_ok && r.wcet_ok)
    std::cout << "  error   perf.wcet-loose      certified WCET "
              << r.report.max_cycles << " exceeds " << kWcetTightness
              << "x measured " << r.measured_cycles << " cycles\n";
}

obs::Json case_json(const CaseResult& r, const CliOptions& opt) {
  obs::Json c = obs::Json::object();
  c.set("network", r.network);
  c.set("level", std::string(1, r.level));
  c.set("split", r.split);
  c.set("clean", r.report.clean());
  c.set("errors", r.report.errors());
  c.set("warnings", r.report.warnings());
  c.set("infos", r.report.infos());
  c.set("instrs", static_cast<uint64_t>(r.report.num_instrs));
  c.set("hw_loops", static_cast<uint64_t>(r.report.num_hw_loops));
  c.set("counted_loops", static_cast<uint64_t>(r.report.num_counted_loops));
  c.set("min_cycles", r.report.min_cycles);
  if (opt.wcet) {
    c.set("max_cycles", r.report.max_cycles);
    if (r.report.max_cycles == 0)
      c.set("wcet_unbounded_reason", r.report.wcet_unbounded_reason);
  }
  if (r.measured_cycles != 0) {
    c.set("measured_cycles", r.measured_cycles);
    c.set("bound_ok", r.bound_ok);
  }
  if (opt.wcet && r.measured_cycles != 0) {
    c.set("wcet_ok", r.wcet_ok);
    c.set("tight_ok", r.tight_ok);
  }
  obs::Json fs = obs::Json::array();
  for (const auto& f : r.report.findings) {
    obs::Json fj = obs::Json::object();
    fj.set("rule", f.rule);
    fj.set("severity", analysis::severity_name(f.severity));
    fj.set("pc", static_cast<uint64_t>(f.pc));
    fj.set("message", f.message);
    fs.push(std::move(fj));
  }
  c.set("findings", std::move(fs));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--network") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.network = v;
    } else if (a == "--level") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.level = parse_level(v);
      if (!opt.level) return usage(argv[0]);
    } else if (a == "--split") {
      opt.split = true;
    } else if (a == "--measure") {
      opt.measure = true;
    } else if (a == "--wcet") {
      opt.wcet = true;
    } else if (a == "--backend") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const auto b = parse_backend(v);
      if (!b) return usage(argv[0]);
      opt.backend = *b;
    } else if (a == "--pedantic") {
      opt.pedantic = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.json_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<CaseResult> results;
  int failed = 0;
  for (const auto& def : rrm::rrm_suite()) {
    if (!opt.network.empty() && def.name != opt.network) continue;
    const rrm::RrmNetwork net{def};
    for (kernels::OptLevel level : kernels::kAllOptLevels) {
      if (opt.level && level != *opt.level) continue;
      CaseResult r = lint_case(net, level, opt);
      print_case(r, opt);
      if (!r.gate_ok) ++failed;
      results.push_back(std::move(r));
    }
  }
  if (results.empty()) {
    std::cerr << "no matching network/level\n";
    return 2;
  }

  std::cout << results.size() << " program(s) linted, " << failed
            << " failing\n";

  if (!opt.json_path.empty()) {
    obs::Json root = obs::Json::object();
    root.set("tool", "rnnasip_lint");
    root.set("cases", obs::Json::array());
    obs::Json cases = obs::Json::array();
    for (const auto& r : results) cases.push(case_json(r, opt));
    root.set("cases", std::move(cases));
    root.set("total", static_cast<uint64_t>(results.size()));
    root.set("failing", failed);
    if (opt.wcet) {
      // The shared bench envelope, so bench_diff.py's "wcet" extractor can
      // gate these bounds against a blessed baseline exactly like any
      // other bench artifact.
      root.set("backend", backend_name(opt.backend));
      obs::Json env = obs::Json::object();
      env.set("schema_version", uint64_t{1});
      env.set("bench", std::string("wcet"));
      env.set("data", std::move(root));
      root = std::move(env);
    }
    const std::string text = root.dump_pretty() + "\n";
    if (opt.json_path == "-") {
      std::cout << text;
    } else {
      std::ofstream out(opt.json_path);
      if (!out) {
        std::cerr << "cannot write " << opt.json_path << "\n";
        return 2;
      }
      out << text;
    }
  }
  return failed == 0 ? 0 : 1;
}
